module Bdd = Ee_logic.Bdd
module Tt = Ee_logic.Truthtab

let tt_gen arity =
  QCheck.make
    ~print:(fun t -> Tt.to_string t)
    (QCheck.Gen.map (fun seed -> Tt.random (Ee_util.Prng.create seed) arity) QCheck.Gen.int)

let qtest name ?(count = 200) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let prop_roundtrip =
  qtest "of_truthtab then to_truthtab" (tt_gen 5) (fun f ->
      let m = Bdd.manager () in
      Tt.equal f (Bdd.to_truthtab m (Bdd.of_truthtab m f) ~arity:5))

let prop_ops_agree =
  qtest "logical ops agree with truth tables" (QCheck.pair (tt_gen 4) (tt_gen 4))
    (fun (a, b) ->
      let m = Bdd.manager () in
      let ba = Bdd.of_truthtab m a and bb = Bdd.of_truthtab m b in
      let check mk tt_op =
        Tt.equal (Bdd.to_truthtab m (mk ba bb) ~arity:4) (tt_op a b)
      in
      check (Bdd.logand m) Tt.logand
      && check (Bdd.logor m) Tt.logor
      && check (Bdd.logxor m) Tt.logxor
      && Tt.equal (Bdd.to_truthtab m (Bdd.lognot m ba) ~arity:4) (Tt.lognot a))

let prop_canonical_equality =
  qtest "equal functions share a node" (QCheck.pair (tt_gen 4) (tt_gen 4)) (fun (a, b) ->
      let m = Bdd.manager () in
      let ba = Bdd.of_truthtab m a and bb = Bdd.of_truthtab m b in
      Bdd.equal ba bb = Tt.equal a b)

let prop_sat_count =
  qtest "sat_count = count_ones" (tt_gen 5) (fun f ->
      let m = Bdd.manager () in
      Bdd.sat_count m (Bdd.of_truthtab m f) ~nvars:5 = Tt.count_ones f)

let prop_restrict =
  qtest "restrict agrees with cofactor" (tt_gen 4) (fun f ->
      let m = Bdd.manager () in
      let b = Bdd.of_truthtab m f in
      List.for_all
        (fun v ->
          List.for_all
            (fun value ->
              Tt.equal
                (Bdd.to_truthtab m (Bdd.restrict m b ~var:v ~value) ~arity:4)
                (Tt.restrict f ~var:v ~value))
            [ false; true ])
        [ 0; 1; 2; 3 ])

let prop_support =
  qtest "support agrees" (tt_gen 4) (fun f ->
      let m = Bdd.manager () in
      Bdd.support m (Bdd.of_truthtab m f) = Tt.support f)

let test_ite () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  let f = Bdd.ite m x y z in
  (* if x then y else z, truth table over 3 vars. *)
  let expected = Tt.of_fun 3 (fun v -> if v land 1 = 1 then (v lsr 1) land 1 = 1 else (v lsr 2) land 1 = 1) in
  Alcotest.(check bool) "ite" true (Tt.equal expected (Bdd.to_truthtab m f ~arity:3))

let test_consts () =
  let m = Bdd.manager () in
  Alcotest.(check (option bool)) "zero" (Some false) (Bdd.is_const (Bdd.zero m));
  Alcotest.(check (option bool)) "one" (Some true) (Bdd.is_const (Bdd.one m));
  Alcotest.(check (option bool)) "var" None (Bdd.is_const (Bdd.var m 3))

let test_node_count_shared () =
  let m = Bdd.manager () in
  (* x0 xor x1 xor x2 has the classic 3-level xor structure. *)
  let f =
    Bdd.logxor m (Bdd.var m 0) (Bdd.logxor m (Bdd.var m 1) (Bdd.var m 2))
  in
  Alcotest.(check bool) "reasonable node count" true (Bdd.node_count m f <= 7);
  Alcotest.(check int) "sat half" 4 (Bdd.sat_count m f ~nvars:3)

let test_reduction () =
  let m = Bdd.manager () in
  (* (x and y) or (x and not y) reduces to x. *)
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.logor m (Bdd.logand m x y) (Bdd.logand m x (Bdd.lognot m y)) in
  Alcotest.(check bool) "reduces to x" true (Bdd.equal f x)

let suite =
  ( "bdd",
    [
      Alcotest.test_case "ite" `Quick test_ite;
      Alcotest.test_case "constants" `Quick test_consts;
      Alcotest.test_case "xor sharing" `Quick test_node_count_shared;
      Alcotest.test_case "reduction" `Quick test_reduction;
      prop_roundtrip;
      prop_ops_agree;
      prop_canonical_equality;
      prop_sat_count;
      prop_restrict;
      prop_support;
    ] )
