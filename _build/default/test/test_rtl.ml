open Ee_rtl

let simple_design =
  {
    Rtl.name = "t";
    inputs = [ ("a", 4); ("b", 4); ("s", 1) ];
    regs = [ ("r", 4, 5) ];
    nexts = [ ("r", Rtl.Input "a") ];
    outputs = [];
  }

let ev e env_extra =
  let env = Rtl.env_with_inputs simple_design (Rtl.initial_env simple_design) env_extra in
  Rtl.eval simple_design env e

let test_eval_ops () =
  let a = Rtl.Input "a" and b = Rtl.Input "b" in
  let env = [ ("a", 12); ("b", 10) ] in
  Alcotest.(check int) "and" (12 land 10) (ev (Rtl.And (a, b)) env);
  Alcotest.(check int) "or" (12 lor 10) (ev (Rtl.Or (a, b)) env);
  Alcotest.(check int) "xor" (12 lxor 10) (ev (Rtl.Xor (a, b)) env);
  Alcotest.(check int) "not" 3 (ev (Rtl.Not a) env);
  Alcotest.(check int) "add wraps" ((12 + 10) land 15) (ev (Rtl.Add (a, b)) env);
  Alcotest.(check int) "sub wraps" ((10 - 12) land 15) (ev (Rtl.Sub (b, a)) env);
  Alcotest.(check int) "eq false" 0 (ev (Rtl.Eq (a, b)) env);
  Alcotest.(check int) "lt" 1 (ev (Rtl.Lt (b, a)) env);
  Alcotest.(check int) "mux 0" 12 (ev (Rtl.Mux (Rtl.Input "s", a, b)) env);
  Alcotest.(check int) "mux 1" 10 (ev (Rtl.Mux (Rtl.Input "s", a, b)) (("s", 1) :: env));
  Alcotest.(check int) "concat" ((12 lsl 4) lor 10) (ev (Rtl.Concat (a, b)) env);
  Alcotest.(check int) "slice" ((12 lsr 1) land 3) (ev (Rtl.Slice (a, 2, 1)) env);
  Alcotest.(check int) "reduce_or" 1 (ev (Rtl.Reduce_or a) env);
  Alcotest.(check int) "reduce_and ones" 1 (ev (Rtl.Reduce_and a) [ ("a", 15) ]);
  Alcotest.(check int) "reduce_xor" 0 (ev (Rtl.Reduce_xor a) env)

let test_widths () =
  let d = simple_design in
  Alcotest.(check int) "input" 4 (Rtl.width d (Rtl.Input "a"));
  Alcotest.(check int) "reg" 4 (Rtl.width d (Rtl.Reg "r"));
  Alcotest.(check int) "eq is 1 bit" 1 (Rtl.width d (Rtl.Eq (Rtl.Input "a", Rtl.Input "b")));
  Alcotest.(check int) "concat" 8 (Rtl.width d (Rtl.Concat (Rtl.Input "a", Rtl.Input "b")));
  Alcotest.(check int) "slice" 2 (Rtl.width d (Rtl.Slice (Rtl.Input "a", 2, 1)))

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

let test_width_errors () =
  let d = simple_design in
  expect_invalid "mismatch" (fun () -> Rtl.width d (Rtl.And (Rtl.Input "a", Rtl.Input "s")));
  expect_invalid "unknown" (fun () -> Rtl.width d (Rtl.Input "nope"));
  expect_invalid "bad slice" (fun () -> Rtl.width d (Rtl.Slice (Rtl.Input "a", 4, 0)));
  expect_invalid "bad const" (fun () -> Rtl.width d (Rtl.Const (4, 16)));
  expect_invalid "mux selector" (fun () ->
      Rtl.width d (Rtl.Mux (Rtl.Input "a", Rtl.Input "a", Rtl.Input "a")))

let test_validate_errors () =
  expect_invalid "missing next" (fun () ->
      Rtl.validate { simple_design with nexts = [] });
  expect_invalid "duplicate next" (fun () ->
      Rtl.validate
        { simple_design with nexts = [ ("r", Rtl.Input "a"); ("r", Rtl.Input "a") ] });
  expect_invalid "unknown reg next" (fun () ->
      Rtl.validate { simple_design with nexts = ("zz", Rtl.Input "a") :: simple_design.nexts });
  expect_invalid "reset too large" (fun () ->
      Rtl.validate { simple_design with regs = [ ("r", 4, 99) ]; nexts = [ ("r", Rtl.Input "a") ] })

let test_step () =
  let d =
    {
      Rtl.name = "acc";
      inputs = [ ("x", 4) ];
      regs = [ ("acc", 4, 0) ];
      nexts = [ ("acc", Rtl.Add (Rtl.Reg "acc", Rtl.Input "x")) ];
      outputs = [ ("acc", Rtl.Reg "acc"); ("next", Rtl.Add (Rtl.Reg "acc", Rtl.Input "x")) ];
    }
  in
  let env = ref (Rtl.initial_env d) in
  let outs1, env1 = Rtl.step d !env [ ("x", 3) ] in
  env := env1;
  let outs2, _ = Rtl.step d !env [ ("x", 2) ] in
  Alcotest.(check int) "acc before" 0 (List.assoc "acc" outs1);
  Alcotest.(check int) "comb out" 3 (List.assoc "next" outs1);
  Alcotest.(check int) "acc after" 3 (List.assoc "acc" outs2);
  Alcotest.(check int) "comb out 2" 5 (List.assoc "next" outs2)

let test_helpers () =
  let d = simple_design in
  Alcotest.(check int) "zext width" 8 (Rtl.width d (Rtl.zext d (Rtl.Input "a") 8));
  Alcotest.(check int) "zext value" 12 (ev (Rtl.zext simple_design (Rtl.Input "a") 8) [ ("a", 12) ]);
  Alcotest.(check int) "shl" ((12 lsl 1) land 15) (ev (Rtl.shl simple_design (Rtl.Input "a") 1) [ ("a", 12) ]);
  Alcotest.(check int) "shr" (12 lsr 2) (ev (Rtl.shr simple_design (Rtl.Input "a") 2) [ ("a", 12) ]);
  Alcotest.(check int) "inc" 13 (ev (Rtl.inc simple_design (Rtl.Input "a")) [ ("a", 12) ]);
  Alcotest.(check int) "eq_const" 1 (ev (Rtl.eq_const simple_design (Rtl.Input "a") 12) [ ("a", 12) ])

let test_select () =
  let d =
    {
      Rtl.name = "sel";
      inputs = [ ("s", 2) ];
      regs = [];
      nexts = [];
      outputs = [ ("y", Rtl.select (Rtl.Input "s") 4 [ Rtl.Const (4, 3); Rtl.Const (4, 7); Rtl.Const (4, 11) ]) ];
    }
  in
  Rtl.validate d;
  List.iter
    (fun (s, expect) ->
      let outs, _ = Rtl.step d (Rtl.initial_env d) [ ("s", s) ] in
      Alcotest.(check int) (Printf.sprintf "case %d" s) expect (List.assoc "y" outs))
    [ (0, 3); (1, 7); (2, 11); (3, 0) ]

let test_dsl () =
  let db = Dsl.design "dsl" in
  let x = Dsl.input db "x" 4 in
  let r = Dsl.reg db "r" ~width:4 ~init:1 in
  Dsl.next_when db "r" ~enable:(Rtl.Eq (x, Rtl.Const (4, 0))) (Rtl.Add (r, x));
  Dsl.output db "r" r;
  let d = Dsl.finish db in
  Alcotest.(check int) "inputs" 1 (List.length d.Rtl.inputs);
  Alcotest.(check int) "regs" 1 (List.length d.Rtl.regs)

let test_dsl_errors () =
  expect_invalid "duplicate input" (fun () ->
      let db = Dsl.design "d" in
      ignore (Dsl.input db "x" 1);
      ignore (Dsl.input db "x" 1));
  expect_invalid "duplicate reg" (fun () ->
      let db = Dsl.design "d" in
      ignore (Dsl.reg db "r" ~width:1 ~init:0);
      ignore (Dsl.reg db "r" ~width:1 ~init:0));
  expect_invalid "duplicate next" (fun () ->
      let db = Dsl.design "d" in
      let r = Dsl.reg db "r" ~width:1 ~init:0 in
      Dsl.next db "r" r;
      Dsl.next db "r" r)

let suite =
  ( "rtl",
    [
      Alcotest.test_case "eval ops" `Quick test_eval_ops;
      Alcotest.test_case "widths" `Quick test_widths;
      Alcotest.test_case "width errors" `Quick test_width_errors;
      Alcotest.test_case "validate errors" `Quick test_validate_errors;
      Alcotest.test_case "step" `Quick test_step;
      Alcotest.test_case "helpers" `Quick test_helpers;
      Alcotest.test_case "select" `Quick test_select;
      Alcotest.test_case "dsl" `Quick test_dsl;
      Alcotest.test_case "dsl errors" `Quick test_dsl_errors;
    ] )
