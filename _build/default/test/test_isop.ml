module Isop = Ee_logic.Isop
module Tt = Ee_logic.Truthtab
module Cube = Ee_logic.Cube
module Qm = Ee_logic.Qm

let tt_gen arity =
  QCheck.make
    ~print:(fun t -> Tt.to_string t)
    (QCheck.Gen.map (fun seed -> Tt.random (Ee_util.Prng.create seed) arity) QCheck.Gen.int)

let qtest name ?(count = 200) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let prop_exact_cover =
  qtest "cover is exactly the ON-set" (tt_gen 5) (fun f ->
      Tt.equal f (Qm.cubes_to_truthtab ~nvars:5 (Isop.cover f)))

let prop_implicants =
  qtest "every cube is an implicant" (tt_gen 4) (fun f ->
      List.for_all
        (fun c -> List.for_all (Tt.eval f) (Cube.minterms ~nvars:4 c))
        (Isop.cover f))

let prop_irredundant =
  qtest "cover is irredundant" (tt_gen 4) (fun f -> Isop.is_irredundant f (Isop.cover f))

let prop_no_bigger_than_qm =
  qtest "not larger than the greedy prime cover (small arities)" (tt_gen 3) (fun f ->
      List.length (Isop.cover f) <= List.length (Qm.cover f) + 1)

let test_known_functions () =
  let check s expected =
    let cubes = List.map (Cube.to_string ~nvars:(Ee_util.Bits.log2_ceil (String.length s)))
        (Isop.cover (Tt.of_string s))
    in
    Alcotest.(check (list string)) s expected (List.sort compare cubes)
  in
  (* Constant false: empty; constant true: universe. *)
  check "0000" [];
  check "1111" [ "--" ];
  (* x AND y. *)
  check "1000" [ "11" ];
  (* XOR needs both minterms. *)
  check "0110" [ "01"; "10" ];
  (* The paper's carry: three primes, all essential. *)
  check "11101000" [ "-11"; "1-1"; "11-" ]

let test_arity_zero_and_one () =
  Alcotest.(check int) "const0 arity1" 0 (List.length (Isop.cover (Tt.create 1)));
  let c = Isop.cover (Tt.var 1 0) in
  Alcotest.(check (list string)) "projection" [ "1" ]
    (List.map (Cube.to_string ~nvars:1) c)

let test_is_irredundant_detects_redundancy () =
  let f = Tt.of_string "1110" in
  (* OR of two vars; cover {1-, -1} irredundant; adding 11 makes it
     redundant. *)
  let good = [ Cube.of_string "1-"; Cube.of_string "-1" ] in
  let bad = Cube.of_string "11" :: good in
  Alcotest.(check bool) "good" true (Isop.is_irredundant f good);
  Alcotest.(check bool) "bad" false (Isop.is_irredundant f bad)

let suite =
  ( "isop",
    [
      Alcotest.test_case "known functions" `Quick test_known_functions;
      Alcotest.test_case "tiny arities" `Quick test_arity_zero_and_one;
      Alcotest.test_case "irredundance detector" `Quick test_is_irredundant_detects_redundancy;
      prop_exact_cover;
      prop_implicants;
      prop_irredundant;
      prop_no_bigger_than_qm;
    ] )
