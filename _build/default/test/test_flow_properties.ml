(* Whole-flow property tests over randomly generated RTL designs: every
   stage of the pipeline — elaboration, LUT4 mapping, PL mapping, EE
   synthesis, all three simulators, BLIF round-trip — must agree with the
   RTL interpreter. *)

open Ee_rtl
module Netlist = Ee_netlist.Netlist
module Pl = Ee_phased.Pl

let qtest name ?(count = 40) prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count QCheck.(int_range 0 1_000_000) prop)

let rtl_equiv_netlist d nl cycles seed =
  let pm = Portmap.make d nl in
  let rng = Ee_util.Prng.create seed in
  let env = ref (Rtl.initial_env d) in
  let st = ref (Netlist.initial_state nl) in
  let ok = ref true in
  for _ = 1 to cycles do
    if !ok then begin
      let ins = Portmap.random_inputs pm rng in
      let outs_rtl, env' = Rtl.step d !env ins in
      let outs_nl, st' = Portmap.step pm !st ins in
      env := env';
      st := st';
      if List.exists (fun (n, v) -> List.assoc n outs_nl <> v) outs_rtl then ok := false
    end
  done;
  !ok

let prop_techmap_equiv =
  qtest "random RTL: techmap preserves semantics" (fun seed ->
      let d = Rtl_gen.generate seed in
      rtl_equiv_netlist d (Techmap.run_rtl d) 40 (seed + 1))

let prop_pl_and_ee_equiv =
  qtest "random RTL: PL mapping and EE preserve semantics" (fun seed ->
      let d = Rtl_gen.generate seed in
      let nl = Techmap.run_rtl d in
      let pl = Pl.of_netlist nl in
      let pl_ee, _ = Ee_core.Synth.run pl in
      Ee_sim.Sim.equiv_random pl nl ~vectors:30 ~seed:(seed + 2)
      && Ee_sim.Sim.equiv_random pl_ee nl ~vectors:30 ~seed:(seed + 2))

let prop_three_simulators_agree =
  qtest "random RTL: wave, streaming and rail simulators agree" ~count:25 (fun seed ->
      let d = Rtl_gen.generate seed in
      let nl = Techmap.run_rtl d in
      let pl = Pl.of_netlist nl in
      let pl_ee, _ = Ee_core.Synth.run pl in
      let width = Array.length (Pl.source_ids pl_ee) in
      let rng = Ee_util.Prng.create (seed + 3) in
      let vectors = List.init 25 (fun _ -> Ee_util.Prng.bool_vector rng width) in
      let wave_sim = Ee_sim.Sim.create pl_ee in
      let rail = Ee_phased.Rail_sim.create pl_ee in
      let wave_outs = List.map (fun v -> (Ee_sim.Sim.apply wave_sim v).Ee_sim.Sim.outputs) vectors in
      let rail_outs = List.map (fun v -> fst (Ee_phased.Rail_sim.apply rail v)) vectors in
      let stream = Ee_sim.Stream_sim.run pl_ee ~vectors in
      let stream_outs = Array.to_list stream.Ee_sim.Stream_sim.outputs in
      wave_outs = rail_outs && wave_outs = stream_outs)

let prop_marked_graph_live_safe =
  qtest "random RTL: marked graph live and safe (with EE)" ~count:30 (fun seed ->
      let d = Rtl_gen.generate seed in
      let nl = Techmap.run_rtl d in
      let pl_ee, _ = Ee_core.Synth.run (Pl.of_netlist nl) in
      let mg = Pl.to_marked_graph pl_ee in
      Ee_markedgraph.Marked_graph.is_live mg && Ee_markedgraph.Marked_graph.is_safe mg)

let prop_blif_roundtrip =
  qtest "random RTL: BLIF round-trip preserves semantics" ~count:25 (fun seed ->
      let d = Rtl_gen.generate seed in
      let nl = Techmap.run_rtl d in
      let nl' = Ee_export.Blif.of_blif (Ee_export.Blif.to_blif nl) in
      (* Drive both netlists with the same per-name values. *)
      let rng = Ee_util.Prng.create (seed + 4) in
      let sta = ref (Netlist.initial_state nl) and stb = ref (Netlist.initial_state nl') in
      let ok = ref true in
      for _ = 1 to 30 do
        if !ok then begin
          let values =
            Array.to_list
              (Array.map (fun (n, _) -> (n, Ee_util.Prng.bool rng)) (Netlist.inputs nl))
          in
          let vec_for m =
            Array.map (fun (n, _) -> List.assoc n values) (Netlist.inputs m)
          in
          let outs_a, sta' = Netlist.step nl !sta (vec_for nl) in
          let outs_b, stb' = Netlist.step nl' !stb (vec_for nl') in
          sta := sta';
          stb := stb';
          let tag m outs =
            List.sort compare
              (Array.to_list (Array.mapi (fun k (n, _) -> (n, outs.(k))) (Netlist.outputs m)))
          in
          if tag nl outs_a <> tag nl' outs_b then ok := false
        end
      done;
      !ok)

let prop_generator_is_deterministic =
  qtest "generator determinism" ~count:50 (fun seed ->
      Rtl_gen.generate seed = Rtl_gen.generate seed)

let suite =
  ( "flow-properties",
    [
      prop_generator_is_deterministic;
      prop_techmap_equiv;
      prop_pl_and_ee_equiv;
      prop_three_simulators_agree;
      prop_marked_graph_live_safe;
      prop_blif_roundtrip;
    ] )
