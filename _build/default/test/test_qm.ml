module Qm = Ee_logic.Qm
module Cube = Ee_logic.Cube
module Tt = Ee_logic.Truthtab

let tt_gen arity =
  QCheck.make
    ~print:(fun t -> Tt.to_string t)
    (QCheck.Gen.map (fun seed -> Tt.random (Ee_util.Prng.create seed) arity) QCheck.Gen.int)

let qtest name ?(count = 150) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let cube_strings nvars cubes = List.map (Cube.to_string ~nvars) cubes

let test_carry_primes () =
  (* The paper's carry function abc -> c(a+b)+ab over 3 vars has exactly the
     ON primes {11-, 1-1, -11} and OFF primes {00-, 0-0, -00}. *)
  let carry = Tt.of_string "11101000" in
  Alcotest.(check (list string)) "ON primes" [ "-11"; "1-1"; "11-" ]
    (cube_strings 3 (Qm.primes carry));
  Alcotest.(check (list string)) "OFF primes" [ "-00"; "0-0"; "00-" ]
    (cube_strings 3 (Qm.primes (Tt.lognot carry)))

let test_xor_primes () =
  (* XOR has no mergeable cubes: primes are the minterms. *)
  let x = Tt.of_string "0110" in
  Alcotest.(check int) "2 primes" 2 (List.length (Qm.primes x));
  List.iter
    (fun c -> Alcotest.(check int) "full literals" 2 (Cube.num_literals c))
    (Qm.primes x)

let test_const_primes () =
  Alcotest.(check int) "false: none" 0 (List.length (Qm.primes (Tt.create 3)));
  let ones = Qm.primes (Tt.const 3 true) in
  Alcotest.(check (list string)) "true: universe" [ "---" ] (cube_strings 3 ones)

let implies tt cube =
  List.for_all (fun m -> Tt.eval tt m) (Cube.minterms ~nvars:(Tt.arity tt) cube)

let prop_primes_are_implicants =
  qtest "every prime is an implicant" (tt_gen 4) (fun f ->
      List.for_all (implies f) (Qm.primes f))

let prop_primes_cover =
  qtest "primes cover the ON-set" (tt_gen 4) (fun f ->
      Tt.equal f (Qm.cubes_to_truthtab ~nvars:4 (Qm.primes f)))

let prop_primes_maximal =
  qtest "primes are maximal (dropping any literal leaves the ON-set)" (tt_gen 4) (fun f ->
      List.for_all
        (fun p ->
          List.for_all
            (fun v ->
              let care = Cube.care p in
              if care land (1 lsl v) = 0 then true
              else
                let bigger =
                  Cube.make ~care:(care land lnot (1 lsl v)) ~value:(Cube.value p)
                in
                not (implies f bigger))
            [ 0; 1; 2; 3 ])
        (Qm.primes f))

let prop_cover_exact =
  qtest "greedy cover is a cover by implicants" (tt_gen 4) (fun f ->
      let cover = Qm.cover f in
      Tt.equal f (Qm.cubes_to_truthtab ~nvars:4 cover)
      && List.for_all (implies f) cover)

let prop_cover_subset_of_primes =
  qtest "cover cubes are primes" (tt_gen 4) (fun f ->
      let primes = Qm.primes f in
      List.for_all (fun c -> List.exists (Cube.equal c) primes) (Qm.cover f))

let test_primes_of_minterms () =
  let ps = Qm.primes_of_minterms ~nvars:3 [ 0; 1; 2; 3 ] in
  Alcotest.(check (list string)) "half-space" [ "0--" ] (cube_strings 3 ps)

let suite =
  ( "qm",
    [
      Alcotest.test_case "carry primes (paper)" `Quick test_carry_primes;
      Alcotest.test_case "xor primes" `Quick test_xor_primes;
      Alcotest.test_case "const primes" `Quick test_const_primes;
      Alcotest.test_case "primes_of_minterms" `Quick test_primes_of_minterms;
      prop_primes_are_implicants;
      prop_primes_cover;
      prop_primes_maximal;
      prop_cover_exact;
      prop_cover_subset_of_primes;
    ] )
