module Families = Ee_bench_circuits.Families
open Ee_rtl

let flow d =
  let nl = Techmap.run_rtl d in
  let pl = Ee_phased.Pl.of_netlist nl in
  let pl_ee, report = Ee_core.Synth.run pl in
  (nl, pl, pl_ee, report)

let test_all_valid_and_equivalent () =
  List.iter
    (fun (f : Families.family) ->
      List.iter
        (fun w ->
          let d = f.Families.build w in
          Rtl.validate d;
          let nl, _, pl_ee, _ = flow d in
          Alcotest.(check bool)
            (Printf.sprintf "%s width %d equivalent" f.Families.name w)
            true
            (Ee_sim.Sim.equiv_random pl_ee nl ~vectors:60 ~seed:9))
        [ 4; 9; 16 ])
    Families.all

let test_xor_families_have_no_triggers () =
  List.iter
    (fun (f : Families.family) ->
      let _, _, _, report = flow (f.Families.build 16) in
      Alcotest.(check int) (f.Families.name ^ " has no EE gates") 0 report.Ee_core.Synth.ee_gates)
    [ Families.parity_tree; Families.crc_step ]

let test_chain_families_speed_up () =
  List.iter
    (fun (f : Families.family) ->
      let _, pl, pl_ee, _ = flow (f.Families.build 16) in
      let base = Ee_sim.Sim.run_random pl ~vectors:150 ~seed:4 in
      let ee = Ee_sim.Sim.run_random pl_ee ~vectors:150 ~seed:4 in
      Alcotest.(check bool)
        (f.Families.name ^ " speeds up substantially")
        true
        (ee.Ee_sim.Sim.avg_settle_time < 0.7 *. base.Ee_sim.Sim.avg_settle_time))
    [ Families.ripple_adder; Families.comparator; Families.incrementer; Families.wide_and ]

let test_functional_behaviour () =
  (* Spot-check semantics of the builders themselves. *)
  let run d ins out =
    let outs, _ = Rtl.step d (Rtl.initial_env d) ins in
    List.assoc out outs
  in
  let add = Families.ripple_adder.Families.build 8 in
  Alcotest.(check int) "adder" (200 + 100) (run add [ ("a", 200); ("b", 100) ] "sum");
  let cmp = Families.comparator.Families.build 8 in
  Alcotest.(check int) "lt" 1 (run cmp [ ("a", 3); ("b", 9) ] "lt");
  Alcotest.(check int) "not lt" 0 (run cmp [ ("a", 9); ("b", 3) ] "lt");
  let par = Families.parity_tree.Families.build 8 in
  Alcotest.(check int) "parity of 0xF1" 1 (run par [ ("a", 0xF1) ] "p");
  let pri = Families.priority_encoder.Families.build 8 in
  Alcotest.(check int) "priority of 0b00101000" 5 (run pri [ ("req", 0b00101000) ] "idx");
  Alcotest.(check int) "priority any" 0 (run pri [ ("req", 0) ] "any");
  let inc = Families.incrementer.Families.build 8 in
  Alcotest.(check int) "increment wraps" 0 (run inc [ ("x", 255) ] "y")

let test_crc_against_reference () =
  (* Bitwise CRC-8/0x07 reference over an 8-bit message. *)
  let reference init msg =
    let crc = ref init in
    for k = 0 to 7 do
      let top = (!crc lsr 7) land 1 in
      crc := (!crc lsl 1) land 0xFF;
      crc := !crc lxor ((msg lsr k) land 1);
      if top = 1 then crc := !crc lxor 0x07
    done;
    !crc
  in
  let d = Families.crc_step.Families.build 8 in
  let rng = Ee_util.Prng.create 6 in
  for _ = 1 to 50 do
    let init = Ee_util.Prng.bits rng 8 and msg = Ee_util.Prng.bits rng 8 in
    let outs, _ = Rtl.step d (Rtl.initial_env d) [ ("init", init); ("msg", msg) ] in
    Alcotest.(check int)
      (Printf.sprintf "crc(%02x, %02x)" init msg)
      (reference init msg) (List.assoc "crc" outs)
  done

let suite =
  ( "families",
    [
      Alcotest.test_case "valid and equivalent" `Quick test_all_valid_and_equivalent;
      Alcotest.test_case "xor families immune" `Quick test_xor_families_have_no_triggers;
      Alcotest.test_case "chain families speed up" `Quick test_chain_families_speed_up;
      Alcotest.test_case "functional behaviour" `Quick test_functional_behaviour;
      Alcotest.test_case "crc vs reference" `Quick test_crc_against_reference;
    ] )
