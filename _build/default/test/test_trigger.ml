module Trigger = Ee_core.Trigger
module Lut4 = Ee_logic.Lut4
module Tt = Ee_logic.Truthtab

let lut_gen =
  QCheck.make
    ~print:(fun f -> Lut4.to_string f)
    (QCheck.Gen.map (fun v -> Lut4.of_int (v land 0xFFFF)) QCheck.Gen.int)

let qtest name ?(count = 300) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let test_paper_example () =
  (* Table 1: carry c(a+b)+ab over (a=2,b=1,c=0); trigger on {a,b} is
     ab + a'b' with coverage 50%. *)
  let c = Trigger.candidate Trigger.full_adder_carry ~subset:0b110 in
  Alcotest.(check int) "coverage count (of 16)" 8 c.Trigger.coverage_count;
  Alcotest.(check (float 1e-9)) "coverage percent" 50. c.Trigger.coverage;
  Alcotest.(check bool) "trigger = xnor(a,b)" true
    (Lut4.equal c.Trigger.func Trigger.full_adder_carry_trigger)

let test_paper_all_subsets () =
  (* For the carry, singleton subsets of {a,b,c} yield zero coverage except
     none; pairs yield 50% each (generate/kill in each pairing). *)
  let cands = Trigger.candidates Trigger.full_adder_carry in
  Alcotest.(check int) "three viable candidates" 3 (List.length cands);
  List.iter
    (fun c ->
      Alcotest.(check int) "pair subset" 2 (Ee_util.Bits.popcount c.Trigger.subset);
      Alcotest.(check (float 1e-9)) "coverage 50" 50. c.Trigger.coverage)
    cands

let prop_trigger_semantics =
  qtest "trigger=1 exactly when the master is decided by the subset"
    (QCheck.pair lut_gen (QCheck.int_range 1 14))
    (fun (f, subset) ->
      let trig = Trigger.trigger_function f ~subset in
      List.for_all
        (fun m ->
          Lut4.eval_bits trig m = (Lut4.constant_under f ~subset ~assignment:m <> None))
        (List.init 16 Fun.id))

let prop_trigger_support_within_subset =
  qtest "trigger depends only on subset inputs"
    (QCheck.pair lut_gen (QCheck.int_range 1 14))
    (fun (f, subset) ->
      Lut4.support (Trigger.trigger_function f ~subset) land lnot subset = 0)

let prop_trigger_monotone_in_subset =
  qtest "larger subsets never lose coverage" lut_gen (fun f ->
      (* For nested subsets S ⊆ S', coverage(S) <= coverage(S'). *)
      List.for_all
        (fun (s, s') ->
          (Trigger.candidate f ~subset:s).Trigger.coverage_count
          <= (Trigger.candidate f ~subset:s').Trigger.coverage_count)
        [ (0b0001, 0b0011); (0b0010, 0b0110); (0b0011, 0b0111); (0b0101, 0b1101) ])

let prop_early_value_is_correct =
  (* The safety argument for EE: whenever the trigger fires 1, evaluating
     the master with ANY values of the non-subset inputs gives the same
     output. *)
  qtest "early evaluation never changes the output"
    (QCheck.pair lut_gen (QCheck.int_range 1 14))
    (fun (f, subset) ->
      let trig = Trigger.trigger_function f ~subset in
      List.for_all
        (fun m ->
          (not (Lut4.eval_bits trig m))
          || List.for_all
               (fun m' ->
                 m' land subset <> m land subset
                 || Lut4.eval_bits f m' = Lut4.eval_bits f m)
               (List.init 16 Fun.id))
        (List.init 16 Fun.id))

let prop_candidates_are_proper_support_subsets =
  qtest "candidates use non-empty strict subsets of the support" lut_gen (fun f ->
      let support = Lut4.support f in
      List.for_all
        (fun c ->
          c.Trigger.subset <> 0
          && c.Trigger.subset <> support
          && c.Trigger.subset land lnot support = 0
          && c.Trigger.coverage_count > 0)
        (Trigger.candidates f))

let prop_cube_route_agrees =
  (* The paper derives triggers from prime cube lists (Table 2); the
     truth-table route used by the implementation must agree. *)
  qtest "cube-list route = truth-table route" ~count:200
    (QCheck.pair lut_gen (QCheck.int_range 1 14))
    (fun (f, subset) ->
      let cl = Ee_logic.Cubelist.of_truthtab (Lut4.to_truthtab f) in
      let via_cubes = Ee_logic.Cubelist.trigger_on_set cl ~subset in
      Tt.equal via_cubes (Lut4.to_truthtab (Trigger.trigger_function f ~subset)))

let test_xor_has_no_candidates () =
  let x = Lut4.logxor (Lut4.var 0) (Lut4.logxor (Lut4.var 1) (Lut4.var 2)) in
  Alcotest.(check int) "xor3 has none" 0 (List.length (Trigger.candidates x))

let test_and4_candidates () =
  let a =
    Lut4.logand (Lut4.var 0) (Lut4.logand (Lut4.var 1) (Lut4.logand (Lut4.var 2) (Lut4.var 3)))
  in
  (* Every non-empty strict subset can kill (some input 0 -> output 0). *)
  Alcotest.(check int) "all 14 subsets viable" 14 (List.length (Trigger.candidates a));
  (* Single-variable subset {0}: f is 0 whenever x0 = 0 — half the space. *)
  let c = Trigger.candidate a ~subset:0b0001 in
  Alcotest.(check int) "kill coverage" 8 c.Trigger.coverage_count

let test_constant_function () =
  Alcotest.(check int) "constant has no candidates" 0
    (List.length (Trigger.candidates Lut4.const0))

let suite =
  ( "trigger",
    [
      Alcotest.test_case "paper Table 1 example" `Quick test_paper_example;
      Alcotest.test_case "paper: all carry subsets" `Quick test_paper_all_subsets;
      Alcotest.test_case "xor has no candidates" `Quick test_xor_has_no_candidates;
      Alcotest.test_case "and4 candidates" `Quick test_and4_candidates;
      Alcotest.test_case "constant function" `Quick test_constant_function;
      prop_trigger_semantics;
      prop_trigger_support_within_subset;
      prop_trigger_monotone_in_subset;
      prop_early_value_is_correct;
      prop_candidates_are_proper_support_subsets;
      prop_cube_route_agrees;
    ] )
