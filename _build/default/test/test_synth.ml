module Synth = Ee_core.Synth
module Pl = Ee_phased.Pl
module Trigger = Ee_core.Trigger
module Netlist = Ee_netlist.Netlist
module Lut4 = Ee_logic.Lut4

let carry_chain_netlist n =
  (* A ripple of carry gates: maj(a_i, b_i, carry_{i-1}). *)
  let b = Netlist.builder () in
  let a = Array.init n (fun i -> Netlist.add_input b (Printf.sprintf "a%d" i)) in
  let bb = Array.init n (fun i -> Netlist.add_input b (Printf.sprintf "b%d" i)) in
  let cin = Netlist.add_input b "cin" in
  let carry = ref cin in
  for i = 0 to n - 1 do
    carry := Netlist.add_lut b Trigger.full_adder_carry [| !carry; bb.(i); a.(i) |]
  done;
  Netlist.set_output b "cout" !carry;
  Netlist.finalize b

let test_plan_on_carry_chain () =
  let pl = Pl.of_netlist (carry_chain_netlist 6) in
  let choices = Synth.plan pl in
  (* All but the first stage can early-evaluate (the first has uniform
     arrivals). *)
  Alcotest.(check int) "five pairs" 5 (List.length choices);
  List.iter
    (fun (c : Synth.gate_choice) ->
      Alcotest.(check bool) "Tmax < Mmax" true (c.Synth.t_max < c.Synth.m_max);
      Alcotest.(check (float 1e-9)) "coverage 50" 50. c.Synth.chosen.Trigger.coverage;
      (* Chosen subset is the {a,b} pair — positions 1 and 2. *)
      Alcotest.(check int) "subset {1,2}" 0b110 c.Synth.chosen.Trigger.subset)
    choices

let test_cost_increases_down_the_chain () =
  let pl = Pl.of_netlist (carry_chain_netlist 6) in
  let costs = List.map (fun c -> c.Synth.cost) (Synth.plan pl) in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "later stages score higher" true (ascending costs)

let test_threshold_prunes () =
  let pl = Pl.of_netlist (carry_chain_netlist 6) in
  let count threshold =
    List.length (Synth.plan ~options:{ Synth.default_options with threshold } pl)
  in
  Alcotest.(check int) "threshold 0 keeps all" 5 (count 0.);
  Alcotest.(check bool) "higher threshold keeps fewer" true (count 200. < 5);
  Alcotest.(check int) "huge threshold keeps none" 0 (count 1e9)

let test_threshold_monotone () =
  let b = Ee_bench_circuits.Itc99.find "b05" in
  let nl = Ee_rtl.Techmap.run_rtl (b.Ee_bench_circuits.Itc99.build ()) in
  let pl = Pl.of_netlist nl in
  let counts =
    List.map
      (fun threshold ->
        List.length (Synth.plan ~options:{ Synth.default_options with threshold } pl))
      [ 0.; 25.; 100.; 400. ]
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone pruning" true (non_increasing counts)

let test_min_coverage_filter () =
  let pl = Pl.of_netlist (carry_chain_netlist 4) in
  let choices =
    Synth.plan ~options:{ Synth.default_options with min_coverage = 60. } pl
  in
  Alcotest.(check int) "nothing reaches 60% on maj gates" 0 (List.length choices)

let test_run_report_consistency () =
  let pl = Pl.of_netlist (carry_chain_netlist 5) in
  let pl_ee, report = Synth.run pl in
  Alcotest.(check int) "ee gates = inserted" (List.length report.Synth.inserted)
    report.Synth.ee_gates;
  Alcotest.(check int) "ee gates in netlist" report.Synth.ee_gates (Pl.ee_gate_count pl_ee);
  Alcotest.(check int) "pl gates preserved" (Pl.pl_gate_count pl) report.Synth.pl_gates;
  let expected_area =
    100. *. float_of_int report.Synth.ee_gates /. float_of_int report.Synth.pl_gates
  in
  Alcotest.(check (float 1e-9)) "area percent" expected_area report.Synth.area_increase_percent;
  (* Masters are unique. *)
  let masters = List.map (fun c -> c.Synth.master) report.Synth.inserted in
  Alcotest.(check int) "unique masters" (List.length masters)
    (List.length (List.sort_uniq compare masters))

let test_function_preserved_on_benchmarks () =
  List.iter
    (fun id ->
      let b = Ee_bench_circuits.Itc99.find id in
      let nl = Ee_rtl.Techmap.run_rtl (b.Ee_bench_circuits.Itc99.build ()) in
      let pl = Pl.of_netlist nl in
      let pl_ee, _ = Synth.run pl in
      Alcotest.(check bool) (id ^ " equivalent") true
        (Ee_sim.Sim.equiv_random pl_ee nl ~vectors:120 ~seed:77))
    [ "b01"; "b03"; "b06"; "b09"; "b11"; "b13" ]

let test_live_safe_preserved () =
  List.iter
    (fun id ->
      let b = Ee_bench_circuits.Itc99.find id in
      let a = Ee_report.Pipeline.build b in
      match Ee_report.Pipeline.check_live_safe a with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    [ "b01"; "b02"; "b05"; "b08"; "b10"; "b12" ]

let test_coverage_only_changes_choices () =
  (* On the carry chain the weighting does not change the winner (only one
     pair subset is viable), but globally the two policies may differ; at
     minimum they must both produce valid plans. *)
  let b = Ee_bench_circuits.Itc99.find "b07" in
  let nl = Ee_rtl.Techmap.run_rtl (b.Ee_bench_circuits.Itc99.build ()) in
  let pl = Pl.of_netlist nl in
  let weighted = Synth.plan pl in
  let coverage_only =
    Synth.plan ~options:{ Synth.default_options with weighting = Ee_core.Cost.Coverage_only } pl
  in
  Alcotest.(check bool) "both non-empty" true
    (weighted <> [] && coverage_only <> []);
  List.iter
    (fun (c : Synth.gate_choice) ->
      Alcotest.(check bool) "eligibility holds regardless" true (c.Synth.t_max < c.Synth.m_max))
    coverage_only

let test_trigger_sharing () =
  (* A ripple chain has many structurally distinct triggers, so build a
     netlist where several masters share the same subset sources: one pair
     (a, b) feeding several carry-style gates at different depths. *)
  let b = Netlist.builder () in
  let a = Netlist.add_input b "a" in
  let bb = Netlist.add_input b "b" in
  let c = Netlist.add_input b "c" in
  let buf = Netlist.add_lut b (Lut4.var 0) [| c |] in
  let late1 = Netlist.add_lut b (Lut4.var 0) [| buf |] in
  let m1 = Netlist.add_lut b Trigger.full_adder_carry [| late1; bb; a |] in
  let m2 = Netlist.add_lut b Trigger.full_adder_carry [| m1; bb; a |] in
  Netlist.set_output b "o1" m1;
  Netlist.set_output b "o2" m2;
  let nl = Netlist.finalize b in
  let pl = Pl.of_netlist nl in
  let unshared_pl, unshared = Synth.run pl in
  let shared_pl, shared =
    Synth.run ~options:{ Synth.default_options with share_triggers = true } pl
  in
  Alcotest.(check int) "two masters" 2 (List.length unshared.Synth.inserted);
  Alcotest.(check int) "unshared: two triggers" 2 unshared.Synth.ee_gates;
  Alcotest.(check int) "shared: one trigger" 1 shared.Synth.ee_gates;
  Alcotest.(check int) "shared report masters" 2 (List.length shared.Synth.inserted);
  (* Function and safety preserved either way. *)
  Alcotest.(check bool) "unshared equivalent" true
    (Ee_sim.Sim.equiv_random unshared_pl nl ~vectors:100 ~seed:5);
  Alcotest.(check bool) "shared equivalent" true
    (Ee_sim.Sim.equiv_random shared_pl nl ~vectors:100 ~seed:5);
  let mg = Pl.to_marked_graph shared_pl in
  Alcotest.(check bool) "shared live+safe" true
    (Ee_markedgraph.Marked_graph.is_live mg && Ee_markedgraph.Marked_graph.is_safe mg);
  (* Same timing: sharing merges identical gates only. *)
  let r1 = Ee_sim.Sim.run_random unshared_pl ~vectors:50 ~seed:9 in
  let r2 = Ee_sim.Sim.run_random shared_pl ~vectors:50 ~seed:9 in
  Alcotest.(check (float 1e-9)) "same avg settle" r1.Ee_sim.Sim.avg_settle_time
    r2.Ee_sim.Sim.avg_settle_time

let test_sharing_on_benchmark () =
  let nl = Ee_rtl.Techmap.run_rtl ((Ee_bench_circuits.Itc99.find "b04").Ee_bench_circuits.Itc99.build ()) in
  let pl = Pl.of_netlist nl in
  let _, unshared = Synth.run pl in
  let shared_pl, shared =
    Synth.run ~options:{ Synth.default_options with share_triggers = true } pl
  in
  Alcotest.(check bool) "sharing never increases triggers" true
    (shared.Synth.ee_gates <= unshared.Synth.ee_gates);
  Alcotest.(check bool) "still equivalent" true
    (Ee_sim.Sim.equiv_random shared_pl nl ~vectors:60 ~seed:3)

let suite =
  ( "synth",
    [
      Alcotest.test_case "plan on carry chain" `Quick test_plan_on_carry_chain;
      Alcotest.test_case "cost increases down the chain" `Quick test_cost_increases_down_the_chain;
      Alcotest.test_case "threshold prunes" `Quick test_threshold_prunes;
      Alcotest.test_case "threshold monotone" `Quick test_threshold_monotone;
      Alcotest.test_case "min coverage filter" `Quick test_min_coverage_filter;
      Alcotest.test_case "run report consistency" `Quick test_run_report_consistency;
      Alcotest.test_case "function preserved (benchmarks)" `Quick test_function_preserved_on_benchmarks;
      Alcotest.test_case "live+safe preserved" `Quick test_live_safe_preserved;
      Alcotest.test_case "coverage-only policy" `Quick test_coverage_only_changes_choices;
      Alcotest.test_case "trigger sharing" `Quick test_trigger_sharing;
      Alcotest.test_case "sharing on benchmark" `Quick test_sharing_on_benchmark;
    ] )
