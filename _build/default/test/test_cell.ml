module Cell = Ee_phased.Cell
module Ledr = Ee_phased.Ledr
module Lut4 = Ee_logic.Lut4

let and2 = Lut4.logand (Lut4.var 0) (Lut4.var 1)

let test_reset_state () =
  let c = Cell.create and2 ~arity:2 in
  Alcotest.(check bool) "even phase" true (Cell.gate_phase c = Ledr.Even);
  Alcotest.(check int) "stable at reset" 0 (Cell.settle c);
  Alcotest.(check bool) "no pending fire" false (Cell.fires_pending c)

let drive c values phase =
  Array.iteri (fun k v -> Cell.set_input c k (Ledr.encode ~value:v ~phase)) (Array.of_list values)

let test_fires_once_per_wave () =
  let c = Cell.create and2 ~arity:2 in
  (* Wave 1: both inputs arrive with odd phase. *)
  drive c [ true; true ] Ledr.Odd;
  Alcotest.(check bool) "pending" true (Cell.fires_pending c);
  let rounds = Cell.settle c in
  Alcotest.(check int) "fires exactly once" 1 rounds;
  Alcotest.(check bool) "output value" true (Ledr.value (Cell.output c));
  Alcotest.(check bool) "output phase odd" true (Ledr.phase (Cell.output c) = Ledr.Odd);
  Alcotest.(check bool) "gate phase toggled" true (Cell.gate_phase c = Ledr.Odd);
  (* Re-settling does nothing until a new wave arrives. *)
  Alcotest.(check int) "stable" 0 (Cell.settle c)

let test_waits_for_all_inputs () =
  let c = Cell.create and2 ~arity:2 in
  Cell.set_input c 0 (Ledr.encode ~value:true ~phase:Ledr.Odd);
  (* Input 1 still carries the even-phase reset token. *)
  Alcotest.(check bool) "not pending" false (Cell.fires_pending c);
  Alcotest.(check int) "no firing" 0 (Cell.settle c);
  Cell.set_input c 1 (Ledr.encode ~value:false ~phase:Ledr.Odd);
  Alcotest.(check int) "fires now" 1 (Cell.settle c);
  Alcotest.(check bool) "1 and 0" false (Ledr.value (Cell.output c))

let test_alternating_waves () =
  let c = Cell.create (Lut4.logxor (Lut4.var 0) (Lut4.var 1)) ~arity:2 in
  let phase = ref Ledr.Odd in
  for wave = 1 to 6 do
    let a = wave mod 2 = 0 and b = wave mod 3 = 0 in
    drive c [ a; b ] !phase;
    Alcotest.(check int) (Printf.sprintf "wave %d fires" wave) 1 (Cell.settle c);
    Alcotest.(check bool) "xor" (a <> b) (Ledr.value (Cell.output c));
    Alcotest.(check bool) "phase carried" true (Ledr.phase (Cell.output c) = !phase);
    phase := Ledr.flip !phase
  done

let test_feedbacks () =
  let c = Cell.create and2 ~arity:2 in
  Alcotest.(check bool) "fo at reset" true (Cell.feedback_to_producers c);
  Alcotest.(check bool) "consumer fb at reset" true (Cell.feedback_to_consumers c);
  drive c [ true; true ] Ledr.Odd;
  ignore (Cell.settle c);
  (* After an odd firing the producer ack and the consumer signal flip. *)
  Alcotest.(check bool) "fo after fire" false (Cell.feedback_to_producers c);
  Alcotest.(check bool) "consumer fb after fire" false (Cell.feedback_to_consumers c)

let test_single_rail_transition () =
  (* Across consecutive firings, the output pair flips exactly one rail —
     the cell preserves the LEDR property. *)
  let c = Cell.create (Lut4.var 0) ~arity:1 in
  let prev = ref (Cell.output c) in
  let phase = ref Ledr.Odd in
  let rng = Ee_util.Prng.create 5 in
  for _ = 1 to 50 do
    Cell.set_input c 0 (Ledr.encode ~value:(Ee_util.Prng.bool rng) ~phase:!phase);
    ignore (Cell.settle c);
    let now = Cell.output c in
    Alcotest.(check int) "hamming 1" 1 (Ledr.hamming !prev now);
    prev := now;
    phase := Ledr.flip !phase
  done

let test_matches_abstract_rule () =
  (* The component-level cell and the abstract rule "fire iff every input
     phase differs from the gate phase" agree on random stimulus, including
     partial-arrival states. *)
  let rng = Ee_util.Prng.create 9 in
  let c = Cell.create (Lut4.logor (Lut4.var 0) (Lut4.var 1)) ~arity:2 in
  let expected_phase = ref false in
  for _ = 1 to 200 do
    (* Randomly refresh a subset of inputs to the next phase. *)
    let next = Ledr.phase_of_bool (not !expected_phase) in
    let refreshed = Array.init 2 (fun _ -> Ee_util.Prng.bool rng) in
    Array.iteri
      (fun k r -> if r then Cell.set_input c k (Ledr.encode ~value:(Ee_util.Prng.bool rng) ~phase:next))
      refreshed;
    let should_fire =
      (* Abstract rule: every input carries the opposite of the gate phase. *)
      Array.for_all (fun r -> Ledr.phase r = next) (Cell.inputs c)
    in
    let fired = Cell.settle c > 0 in
    if should_fire then begin
      Alcotest.(check bool) "fired" true fired;
      expected_phase := not !expected_phase
    end;
    Alcotest.(check bool) "phase tracks" true
      (Cell.gate_phase c = Ledr.phase_of_bool !expected_phase)
  done

let suite =
  ( "cell",
    [
      Alcotest.test_case "reset state" `Quick test_reset_state;
      Alcotest.test_case "fires once per wave" `Quick test_fires_once_per_wave;
      Alcotest.test_case "waits for all inputs" `Quick test_waits_for_all_inputs;
      Alcotest.test_case "alternating waves" `Quick test_alternating_waves;
      Alcotest.test_case "feedbacks" `Quick test_feedbacks;
      Alcotest.test_case "single-rail transitions" `Quick test_single_rail_transition;
      Alcotest.test_case "matches abstract rule" `Quick test_matches_abstract_rule;
    ] )
