module Equiv = Ee_netlist.Equiv
module Netlist = Ee_netlist.Netlist
module Lut4 = Ee_logic.Lut4

let design_of id = (Ee_bench_circuits.Itc99.find id).Ee_bench_circuits.Itc99.build ()

let test_mappers_formally_equivalent () =
  (* The greedy and priority-cuts mappers produce provably equivalent
     netlists from the same RTL. *)
  List.iter
    (fun id ->
      let d = design_of id in
      let greedy = Ee_rtl.Techmap.run_rtl d in
      let depth = Ee_rtl.Cutmap.run_rtl ~mode:Ee_rtl.Cutmap.Depth d in
      let ee_aware = Ee_rtl.Cutmap.run_rtl ~mode:Ee_rtl.Cutmap.Ee_aware d in
      Alcotest.(check bool) (id ^ " greedy=depth") true (Equiv.is_equivalent greedy depth);
      Alcotest.(check bool) (id ^ " greedy=ee-aware") true (Equiv.is_equivalent greedy ee_aware))
    [ "b01"; "b02"; "b06"; "b09"; "b10" ]

let test_blif_roundtrip_formally_equivalent () =
  List.iter
    (fun id ->
      let nl = Ee_rtl.Techmap.run_rtl (design_of id) in
      let nl' = Ee_export.Blif.of_blif (Ee_export.Blif.to_blif nl) in
      Alcotest.(check bool) (id ^ " roundtrip") true (Equiv.is_equivalent nl nl'))
    [ "b01"; "b02"; "b06"; "b09" ]

let two_input name func =
  let b = Netlist.builder () in
  let x = Netlist.add_input b "x" in
  let y = Netlist.add_input b "y" in
  let g = Netlist.add_lut b func [| x; y |] in
  Netlist.set_output b name g;
  Netlist.finalize b

let test_detects_output_mismatch () =
  let a = two_input "z" (Lut4.logand (Lut4.var 0) (Lut4.var 1)) in
  let b = two_input "z" (Lut4.logor (Lut4.var 0) (Lut4.var 1)) in
  (match Equiv.check a b with
  | Equiv.Output_mismatch "z" -> ()
  | _ -> Alcotest.fail "expected output mismatch");
  (* Same function built differently: AND = NOT (NOT x OR NOT y). *)
  let builder = Netlist.builder () in
  let x = Netlist.add_input builder "x" in
  let y = Netlist.add_input builder "y" in
  let nx = Netlist.add_lut builder (Lut4.lognot (Lut4.var 0)) [| x |] in
  let ny = Netlist.add_lut builder (Lut4.lognot (Lut4.var 0)) [| y |] in
  let nor = Netlist.add_lut builder (Lut4.logor (Lut4.var 0) (Lut4.var 1)) [| nx; ny |] in
  let out = Netlist.add_lut builder (Lut4.lognot (Lut4.var 0)) [| nor |] in
  Netlist.set_output builder "z" out;
  let de_morgan = Netlist.finalize builder in
  Alcotest.(check bool) "De Morgan form equivalent" true (Equiv.is_equivalent a de_morgan)

let test_detects_port_mismatch () =
  let a = two_input "z" Lut4.const1 in
  let b = two_input "w" Lut4.const1 in
  match Equiv.check a b with
  | Equiv.Port_mismatch _ -> ()
  | _ -> Alcotest.fail "expected port mismatch"

let test_detects_register_mismatch () =
  let make init =
    let b = Netlist.builder () in
    let d = Netlist.add_dff b ~init in
    let inv = Netlist.add_lut b (Lut4.lognot (Lut4.var 0)) [| d |] in
    Netlist.connect_dff b d ~d:inv;
    Netlist.set_output b "q" d;
    Netlist.finalize b
  in
  Alcotest.(check bool) "same reset equivalent" true (Equiv.is_equivalent (make false) (make false));
  match Equiv.check (make false) (make true) with
  | Equiv.Register_mismatch -> ()
  | _ -> Alcotest.fail "expected register mismatch"

let test_sequential_equivalence () =
  (* Same FSM mapped two ways, checked as functions of state and input. *)
  let d = design_of "b13" in
  let a = Ee_rtl.Techmap.run_rtl d in
  let b = Ee_rtl.Cutmap.run_rtl ~mode:Ee_rtl.Cutmap.Depth d in
  Alcotest.(check bool) "b13 sequential equivalence" true (Equiv.is_equivalent a b)

let suite =
  ( "equiv",
    [
      Alcotest.test_case "mappers formally equivalent" `Quick test_mappers_formally_equivalent;
      Alcotest.test_case "blif roundtrip formal" `Quick test_blif_roundtrip_formally_equivalent;
      Alcotest.test_case "detects output mismatch" `Quick test_detects_output_mismatch;
      Alcotest.test_case "detects port mismatch" `Quick test_detects_port_mismatch;
      Alcotest.test_case "detects register mismatch" `Quick test_detects_register_mismatch;
      Alcotest.test_case "sequential equivalence" `Quick test_sequential_equivalence;
    ] )
