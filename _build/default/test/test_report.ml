module Tables = Ee_report.Tables
module Pipeline = Ee_report.Pipeline

let test_table1_matches_paper () =
  Alcotest.(check (float 1e-9)) "coverage 50%" 50. (Tables.table1_coverage ());
  let rendered = Ee_util.Table.render (Tables.table1 ()) in
  (* Spot-check two rows of the paper: 011 -> master 1, trigger 0;
     110 -> master 1, trigger 1. *)
  Alcotest.(check bool) "rendered" true (Astring_contains.contains rendered "0 1 1")

let test_table2_totals () =
  let t = Tables.table2 () in
  let csv = Ee_util.Table.to_csv t in
  (* Six prime cubes (3 ON + 3 OFF). *)
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  Alcotest.(check int) "header + six cubes" 7 (List.length lines)

let test_pipeline_artifact () =
  let a = Pipeline.build (Ee_bench_circuits.Itc99.find "b09") in
  Alcotest.(check string) "id" "b09" a.Pipeline.id;
  Alcotest.(check bool) "has ee gates" true
    (a.Pipeline.synth_report.Ee_core.Synth.ee_gates > 0);
  Alcotest.(check int) "baseline has no triggers" 0
    (Ee_phased.Pl.ee_gate_count a.Pipeline.pl);
  Alcotest.(check bool) "live and safe" true (Pipeline.check_live_safe a = Ok ())

let test_row_determinism () =
  let a = Pipeline.build (Ee_bench_circuits.Itc99.find "b05") in
  let r1 = Tables.row_of_artifact ~vectors:50 ~seed:3 a in
  let r2 = Tables.row_of_artifact ~vectors:50 ~seed:3 a in
  Alcotest.(check (float 1e-12)) "same delay" r1.Tables.delay_ee r2.Tables.delay_ee;
  let r3 = Tables.row_of_artifact ~vectors:50 ~seed:4 a in
  Alcotest.(check bool) "documented fields" true
    (r3.Tables.pl_gates = r1.Tables.pl_gates && r3.Tables.ee_gates = r1.Tables.ee_gates)

let test_table3_shape () =
  (* Few vectors to keep the suite fast; the shape claims must still hold. *)
  let t3 = Tables.run_table3 ~vectors:30 ~seed:2002 () in
  Alcotest.(check int) "fifteen rows" 15 (List.length t3.Tables.rows);
  Alcotest.(check bool) "average speedup double digit" true
    (t3.Tables.avg_delay_decrease > 10.);
  Alcotest.(check bool) "average area 20-60%" true
    (t3.Tables.avg_area_increase > 20. && t3.Tables.avg_area_increase < 60.);
  (* Arithmetic-heavy circuits beat the tiny FSM benchmarks. *)
  let dec id =
    (List.find (fun r -> r.Tables.id = id) t3.Tables.rows).Tables.delay_decrease
  in
  Alcotest.(check bool) "b12 gains a lot" true (dec "b12" > 20.);
  Alcotest.(check bool) "b02 gains nothing" true (dec "b02" < 5.);
  (* At least one circuit shows the EE-control-overhead degradation the
     paper reports. *)
  Alcotest.(check bool) "some degradation exists" true
    (List.exists (fun r -> r.Tables.delay_decrease < 0.) t3.Tables.rows)

let test_sweep_monotone_area () =
  let points =
    Ee_report.Sweep.run ~vectors:20 ~seed:1 ~thresholds:[ 0.; 100.; 1e9 ]
      (Ee_bench_circuits.Itc99.find "b05")
  in
  match points with
  | [ p0; p1; p2 ] ->
      Alcotest.(check bool) "area non-increasing" true
        (p0.Ee_report.Sweep.ee_gates >= p1.Ee_report.Sweep.ee_gates
        && p1.Ee_report.Sweep.ee_gates >= p2.Ee_report.Sweep.ee_gates);
      Alcotest.(check int) "infinite threshold: no EE" 0 p2.Ee_report.Sweep.ee_gates;
      Alcotest.(check (float 0.3)) "no EE = baseline delay" 0.
        p2.Ee_report.Sweep.delay_decrease
  | _ -> Alcotest.fail "expected three points"

let test_ablation_rows () =
  let rows = Ee_report.Ablation.run ~vectors:15 ~seed:5 () in
  Alcotest.(check int) "fifteen rows" 15 (List.length rows)

let test_table3_rendering () =
  let t3 = Tables.run_table3 ~vectors:10 ~seed:1 () in
  let rendered = Ee_util.Table.render (Tables.table3_to_table t3) in
  Alcotest.(check bool) "has average row" true (Astring_contains.contains rendered "average");
  Alcotest.(check bool) "mentions the Viper row" true
    (Astring_contains.contains rendered "Viper")

let suite =
  ( "report",
    [
      Alcotest.test_case "table1 matches paper" `Quick test_table1_matches_paper;
      Alcotest.test_case "table2 totals" `Quick test_table2_totals;
      Alcotest.test_case "pipeline artifact" `Quick test_pipeline_artifact;
      Alcotest.test_case "row determinism" `Quick test_row_determinism;
      Alcotest.test_case "table3 shape" `Slow test_table3_shape;
      Alcotest.test_case "sweep monotone area" `Quick test_sweep_monotone_area;
      Alcotest.test_case "ablation rows" `Quick test_ablation_rows;
      Alcotest.test_case "table3 rendering" `Quick test_table3_rendering;
    ] )
