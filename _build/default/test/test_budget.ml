module Budget = Ee_core.Budget
module Synth = Ee_core.Synth
module Pl = Ee_phased.Pl

let pl_of id =
  Pl.of_netlist
    (Ee_rtl.Techmap.run_rtl ((Ee_bench_circuits.Itc99.find id).Ee_bench_circuits.Itc99.build ()))

let test_budget_limits_count () =
  let pl = pl_of "b05" in
  let unlimited = List.length (Synth.plan pl) in
  Alcotest.(check bool) "plan non-empty" true (unlimited > 5);
  List.iter
    (fun budget ->
      let chosen = Budget.select pl ~budget in
      Alcotest.(check int) "exactly budget" (min budget unlimited) (List.length chosen))
    [ 0; 1; 3; 10; 10_000 ]

let test_budget_takes_highest_cost () =
  let pl = pl_of "b05" in
  let all = Synth.plan pl in
  let k = 5 in
  let chosen = Budget.select pl ~budget:k in
  let cheapest_chosen =
    List.fold_left (fun acc c -> min acc c.Synth.cost) infinity chosen
  in
  let not_chosen =
    List.filter (fun c -> not (List.exists (fun c' -> c'.Synth.master = c.Synth.master) chosen)) all
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) "skipped cost <= kept cost" true
        (c.Synth.cost <= cheapest_chosen +. 1e-9))
    not_chosen

let test_run_budgeted () =
  let pl = pl_of "b09" in
  let pl', report = Budget.run pl ~budget:4 in
  Alcotest.(check int) "four triggers" 4 (Pl.ee_gate_count pl');
  Alcotest.(check int) "report agrees" 4 report.Synth.ee_gates;
  (* Functionality and safety preserved. *)
  let nl =
    Ee_rtl.Techmap.run_rtl ((Ee_bench_circuits.Itc99.find "b09").Ee_bench_circuits.Itc99.build ())
  in
  Alcotest.(check bool) "still equivalent" true
    (Ee_sim.Sim.equiv_random pl' nl ~vectors:80 ~seed:3);
  let mg = Pl.to_marked_graph pl' in
  Alcotest.(check bool) "live+safe" true
    (Ee_markedgraph.Marked_graph.is_live mg && Ee_markedgraph.Marked_graph.is_safe mg)

let test_pareto_monotone_area () =
  let pl = pl_of "b05" in
  let curve = Budget.pareto ~vectors:20 ~seed:1 pl ~budgets:[ 0; 5; 20; 1000 ] in
  let rec check = function
    | (b1, a1, _) :: ((b2, a2, _) :: _ as rest) ->
        Alcotest.(check bool) "budgets ordered" true (b1 <= b2);
        Alcotest.(check bool) "area non-decreasing" true (a1 <= a2 +. 1e-9);
        check rest
    | _ -> ()
  in
  check curve;
  (match curve with
  | (0, a0, d0) :: _ ->
      Alcotest.(check (float 1e-9)) "budget 0 no area" 0. a0;
      let baseline = (Ee_sim.Sim.run_random pl ~vectors:20 ~seed:1).Ee_sim.Sim.avg_settle_time in
      Alcotest.(check (float 1e-9)) "budget 0 = baseline" baseline d0
  | _ -> Alcotest.fail "missing budget 0");
  match List.rev curve with
  | (_, _, d_full) :: _ ->
      let d0 = match curve with (_, _, d) :: _ -> d | [] -> 0. in
      Alcotest.(check bool) "full budget faster than none" true (d_full < d0)
  | [] -> ()

let test_negative_budget () =
  let pl = pl_of "b02" in
  match Budget.select pl ~budget:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let suite =
  ( "budget",
    [
      Alcotest.test_case "budget limits count" `Quick test_budget_limits_count;
      Alcotest.test_case "takes highest cost" `Quick test_budget_takes_highest_cost;
      Alcotest.test_case "run budgeted" `Quick test_run_budgeted;
      Alcotest.test_case "pareto monotone" `Quick test_pareto_monotone_area;
      Alcotest.test_case "negative budget" `Quick test_negative_budget;
    ] )
