module Table = Ee_util.Table

let test_render () =
  let t = Table.create ~headers:[ "name"; "n" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && Astring_contains.contains s "name");
  Alcotest.(check bool) "contains row" true (Astring_contains.contains s "alpha");
  (* All lines have equal length (well-formed box). *)
  let lines = String.split_on_char '\n' (String.trim s) in
  let lens = List.map String.length lines in
  List.iter (fun l -> Alcotest.(check int) "line width" (List.hd lens) l) lens

let test_row_mismatch () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "wrong arity" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let test_csv () =
  let t = Table.create ~headers:[ "x"; "y" ] in
  Table.add_row t [ "v,1"; "plain" ];
  Table.add_separator t;
  Table.add_row t [ "quote\"q"; "2" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv" "x,y\n\"v,1\",plain\n\"quote\"\"q\",2\n" csv

let test_alignment () =
  let t = Table.create_aligned ~headers:[ ("l", Table.Left); ("r", Table.Right) ] in
  Table.add_row t [ "a"; "b" ];
  let s = Table.render t in
  Alcotest.(check bool) "rendered" true (String.length s > 0)

let suite =
  ( "table",
    [
      Alcotest.test_case "render" `Quick test_render;
      Alcotest.test_case "row mismatch" `Quick test_row_mismatch;
      Alcotest.test_case "csv" `Quick test_csv;
      Alcotest.test_case "alignment" `Quick test_alignment;
    ] )
