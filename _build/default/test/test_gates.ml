module Gates = Ee_rtl.Gates

let fresh () =
  let b = Gates.builder () in
  let x = Gates.input b "x" 0 in
  let y = Gates.input b "y" 0 in
  (b, x, y)

let test_constant_folding_and () =
  let b, x, _ = fresh () in
  let zero = Gates.const b false and one = Gates.const b true in
  Alcotest.(check int) "x & 0 = 0" zero (Gates.gand b x zero);
  Alcotest.(check int) "x & 1 = x" x (Gates.gand b x one);
  Alcotest.(check int) "x & x = x" x (Gates.gand b x x);
  Alcotest.(check int) "x & ~x = 0" zero (Gates.gand b x (Gates.gnot b x))

let test_constant_folding_or () =
  let b, x, _ = fresh () in
  let zero = Gates.const b false and one = Gates.const b true in
  Alcotest.(check int) "x | 1 = 1" one (Gates.gor b x one);
  Alcotest.(check int) "x | 0 = x" x (Gates.gor b x zero);
  Alcotest.(check int) "x | x = x" x (Gates.gor b x x);
  Alcotest.(check int) "x | ~x = 1" one (Gates.gor b x (Gates.gnot b x))

let test_constant_folding_xor () =
  let b, x, _ = fresh () in
  let zero = Gates.const b false and one = Gates.const b true in
  Alcotest.(check int) "x ^ x = 0" zero (Gates.gxor b x x);
  Alcotest.(check int) "x ^ 0 = x" x (Gates.gxor b x zero);
  Alcotest.(check int) "x ^ 1 = ~x" (Gates.gnot b x) (Gates.gxor b x one);
  Alcotest.(check int) "x ^ ~x = 1" one (Gates.gxor b x (Gates.gnot b x))

let test_double_negation () =
  let b, x, _ = fresh () in
  Alcotest.(check int) "~~x = x" x (Gates.gnot b (Gates.gnot b x))

let test_mux_folding () =
  let b, x, y = fresh () in
  let zero = Gates.const b false and one = Gates.const b true in
  let s = Gates.input b "s" 0 in
  Alcotest.(check int) "mux same branches" x (Gates.gmux b ~sel:s ~f0:x ~f1:x);
  Alcotest.(check int) "mux const sel 0" x (Gates.gmux b ~sel:zero ~f0:x ~f1:y);
  Alcotest.(check int) "mux const sel 1" y (Gates.gmux b ~sel:one ~f0:x ~f1:y);
  Alcotest.(check int) "mux 0/1 = sel" s (Gates.gmux b ~sel:s ~f0:zero ~f1:one);
  Alcotest.(check int) "mux 1/0 = ~sel" (Gates.gnot b s) (Gates.gmux b ~sel:s ~f0:one ~f1:zero);
  Alcotest.(check int) "mux(s,0,y) = s&y" (Gates.gand b s y) (Gates.gmux b ~sel:s ~f0:zero ~f1:y)

let test_hash_consing () =
  let b, x, y = fresh () in
  Alcotest.(check int) "same and shared" (Gates.gand b x y) (Gates.gand b x y);
  Alcotest.(check int) "commutative sharing" (Gates.gand b x y) (Gates.gand b y x);
  Alcotest.(check int) "xor commutative" (Gates.gxor b x y) (Gates.gxor b y x)

let test_eval () =
  let b, x, y = fresh () in
  let f = Gates.gor b (Gates.gand b x y) (Gates.gnot b x) in
  Gates.set_output b "f" [| f |];
  Gates.declare_input b "x" 1;
  Gates.declare_input b "y" 1;
  let c = Gates.finalize b in
  let run vx vy =
    let values =
      Gates.eval c
        ~env:(fun (n, _) -> if n = "x" then vx else vy)
        ~regs:(fun _ -> false)
    in
    values.(f)
  in
  Alcotest.(check bool) "11" true (run true true);
  Alcotest.(check bool) "10" false (run true false);
  Alcotest.(check bool) "01" true (run false true);
  Alcotest.(check bool) "00" true (run false false)

let test_elaborate_shapes () =
  (* The carry chain of an adder must surface as majority gates on raw
     operand bits (the EE-friendly lowering). *)
  let d =
    {
      Ee_rtl.Rtl.name = "a";
      inputs = [ ("a", 4); ("b", 4) ];
      regs = [];
      nexts = [];
      outputs =
        [ ("s", Ee_rtl.Rtl.Add (Ee_rtl.Rtl.Input "a", Ee_rtl.Rtl.Input "b")) ];
    }
  in
  let c = Ee_rtl.Elaborate.run d in
  Alcotest.(check bool) "nontrivial gate count" true (Gates.gate_count c > 10);
  (* Elaborating twice gives identical circuits (pure). *)
  let c2 = Ee_rtl.Elaborate.run d in
  Alcotest.(check int) "deterministic" (Gates.gate_count c) (Gates.gate_count c2)

let test_structural_sharing_in_elaboration () =
  (* The same sub-expression elaborated twice maps to the same gates. *)
  let sum = Ee_rtl.Rtl.Add (Ee_rtl.Rtl.Input "a", Ee_rtl.Rtl.Input "b") in
  let d1 =
    {
      Ee_rtl.Rtl.name = "s1";
      inputs = [ ("a", 6); ("b", 6) ];
      regs = [];
      nexts = [];
      outputs = [ ("x", sum); ("y", sum) ];
    }
  in
  let d2 = { d1 with outputs = [ ("x", sum) ] } in
  Alcotest.(check int) "no duplicate logic"
    (Gates.gate_count (Ee_rtl.Elaborate.run d2))
    (Gates.gate_count (Ee_rtl.Elaborate.run d1))

let suite =
  ( "gates",
    [
      Alcotest.test_case "and folding" `Quick test_constant_folding_and;
      Alcotest.test_case "or folding" `Quick test_constant_folding_or;
      Alcotest.test_case "xor folding" `Quick test_constant_folding_xor;
      Alcotest.test_case "double negation" `Quick test_double_negation;
      Alcotest.test_case "mux folding" `Quick test_mux_folding;
      Alcotest.test_case "hash consing" `Quick test_hash_consing;
      Alcotest.test_case "eval" `Quick test_eval;
      Alcotest.test_case "elaborate shapes" `Quick test_elaborate_shapes;
      Alcotest.test_case "sharing in elaboration" `Quick test_structural_sharing_in_elaboration;
    ] )
