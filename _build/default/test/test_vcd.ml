module Vcd = Ee_export.Vcd
module Pl = Ee_phased.Pl

let pl_of id =
  let nl = Ee_rtl.Techmap.run_rtl ((Ee_bench_circuits.Itc99.find id).Ee_bench_circuits.Itc99.build ()) in
  let pl = Pl.of_netlist nl in
  let pl_ee, _ = Ee_core.Synth.run pl in
  pl_ee

let test_structure () =
  let pl = pl_of "b06" in
  let vcd = Vcd.dump_random pl ~waves:5 ~seed:3 in
  List.iter
    (fun tag ->
      Alcotest.(check bool) ("contains " ^ tag) true (Astring_contains.contains vcd tag))
    [
      "$timescale"; "$enddefinitions"; "$dumpvars"; "#0"; "$var wire 1"; "in_irq1";
      "out_ack1"; "_phase";
    ]

let test_var_count () =
  let pl = pl_of "b02" in
  let vcd = Vcd.dump_random pl ~waves:2 ~seed:1 in
  let count needle =
    let n = String.length needle and h = String.length vcd in
    let rec go i acc =
      if i + n > h then acc
      else if String.sub vcd i n = needle then go (i + n) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  (* Two $var lines per PL gate (value + phase). *)
  Alcotest.(check int) "vars" (2 * Array.length (Pl.gates pl)) (count "$var wire 1")

let test_timestamps_monotone () =
  let pl = pl_of "b09" in
  let vcd = Vcd.dump_random pl ~waves:4 ~seed:7 in
  let last = ref (-1) in
  List.iter
    (fun line ->
      if String.length line > 1 && line.[0] = '#' then begin
        let t = int_of_string (String.sub line 1 (String.length line - 1)) in
        Alcotest.(check bool) "monotone timestamps" true (t >= !last);
        last := t
      end)
    (String.split_on_char '\n' vcd)

let test_deterministic () =
  let pl = pl_of "b01" in
  Alcotest.(check bool) "same dump" true
    (Vcd.dump_random pl ~waves:3 ~seed:5 = Vcd.dump_random pl ~waves:3 ~seed:5)

let suite =
  ( "vcd",
    [
      Alcotest.test_case "structure" `Quick test_structure;
      Alcotest.test_case "var count" `Quick test_var_count;
      Alcotest.test_case "timestamps monotone" `Quick test_timestamps_monotone;
      Alcotest.test_case "deterministic" `Quick test_deterministic;
    ] )
