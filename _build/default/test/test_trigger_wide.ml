module Tw = Ee_core.Trigger_wide
module Tt = Ee_logic.Truthtab

let qtest name ?(count = 150) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let lut_gen =
  QCheck.make
    ~print:(fun f -> Ee_logic.Lut4.to_string f)
    (QCheck.Gen.map (fun v -> Ee_logic.Lut4.of_int (v land 0xFFFF)) QCheck.Gen.int)

let tt_gen arity =
  QCheck.make
    ~print:Tt.to_string
    (QCheck.Gen.map (fun seed -> Tt.random (Ee_util.Prng.create seed) arity) QCheck.Gen.int)

let prop_matches_lut4 =
  qtest "arity-4 agrees with the LUT4 engine" lut_gen Tw.agrees_with_lut4

let prop_semantics_arity6 =
  qtest "trigger semantics at arity 6" ~count:40 (tt_gen 6) (fun f ->
      List.for_all
        (fun (c : Tw.candidate) ->
          (* Spot-check a handful of minterms per candidate. *)
          List.for_all
            (fun m ->
              Tt.eval c.Tw.func m = (Tt.constant_under f ~subset:c.Tw.subset ~assignment:m <> None))
            [ 0; 7; 21; 42; 63 ])
        (Tw.candidates f))

let prop_candidate_count_bound =
  qtest "at most 2^k - 2 candidates" (tt_gen 5) (fun f ->
      let k = Ee_util.Bits.popcount (Tt.support f) in
      List.length (Tw.candidates f) <= max 0 ((1 lsl k) - 2))

let test_wide_adder_carry () =
  (* Carry-out of a 5-input majority-style function: triggers exist on the
     early pairs exactly as at arity 3. *)
  let f =
    (* carry(a4..a0) = 1 iff at least 3 inputs set: a symmetric function
       whose single-variable cofactors are never constant but whose
       2-subsets can decide when combined with symmetry. *)
    Tt.of_fun 5 (fun m -> Ee_util.Bits.popcount m >= 3)
  in
  let cands = Tw.candidates f in
  Alcotest.(check bool) "some candidates" true (cands <> []);
  List.iter
    (fun (c : Tw.candidate) ->
      Alcotest.(check bool) "only >=3-subsets can decide majority-of-5" true
        (Ee_util.Bits.popcount c.Tw.subset >= 3))
    cands

let test_xor6_immune () =
  let f = Tt.of_fun 6 (fun m -> Ee_util.Bits.popcount m land 1 = 1) in
  Alcotest.(check int) "xor6 has no candidates" 0 (List.length (Tw.candidates f))

let suite =
  ( "trigger-wide",
    [
      Alcotest.test_case "majority-of-5" `Quick test_wide_adder_carry;
      Alcotest.test_case "xor6 immune" `Quick test_xor6_immune;
      prop_matches_lut4;
      prop_semantics_arity6;
      prop_candidate_count_bound;
    ] )
