open Ee_rtl
module Kit = Ee_bench_circuits.Rtlkit

(* Evaluate a pure expression with 8-bit inputs a and b. *)
let d8 =
  {
    Rtl.name = "kit";
    inputs = [ ("a", 8); ("b", 8); ("n", 3) ];
    regs = [];
    nexts = [];
    outputs = [];
  }

let ev e bindings =
  Rtl.eval d8 (Rtl.env_with_inputs d8 (Rtl.initial_env d8) bindings) e

let a = Rtl.Input "a"

let b = Rtl.Input "b"

let test_zext () =
  Alcotest.(check int) "value preserved" 200 (ev (Kit.zext ~from:8 12 a) [ ("a", 200) ]);
  Alcotest.(check int) "width" 12 (Rtl.width d8 (Kit.zext ~from:8 12 a))

let test_shifts () =
  Alcotest.(check int) "shl" ((0xB3 lsl 2) land 0xFF) (ev (Kit.shl 8 a 2) [ ("a", 0xB3) ]);
  Alcotest.(check int) "shr" (0xB3 lsr 3) (ev (Kit.shr 8 a 3) [ ("a", 0xB3) ]);
  Alcotest.(check int) "shl overflow" 0 (ev (Kit.shl 8 a 8) [ ("a", 0xFF) ]);
  Alcotest.(check int) "shl zero" 7 (ev (Kit.shl 8 a 0) [ ("a", 7) ])

let test_rotl () =
  Alcotest.(check int) "rotl 3" 0b10011101 (ev (Kit.rotl 8 a 3) [ ("a", 0b10110011) ]);
  Alcotest.(check int) "rotl full" 0xAB (ev (Kit.rotl 8 a 8) [ ("a", 0xAB) ])

let test_popcount () =
  List.iter
    (fun v ->
      Alcotest.(check int) (Printf.sprintf "popcount %x" v) (Ee_util.Bits.popcount v)
        (ev (Kit.popcount 8 a) [ ("a", v) ]))
    [ 0; 1; 0xFF; 0xA5; 0x80 ];
  Alcotest.(check int) "width" 4 (Rtl.width d8 (Kit.popcount 8 a))

let test_min_max_absdiff () =
  Alcotest.(check int) "min" 3 (ev (Kit.min2 a b) [ ("a", 9); ("b", 3) ]);
  Alcotest.(check int) "max" 9 (ev (Kit.max2 a b) [ ("a", 9); ("b", 3) ]);
  Alcotest.(check int) "absdiff" 6 (ev (Kit.abs_diff a b) [ ("a", 9); ("b", 3) ]);
  Alcotest.(check int) "absdiff sym" 6 (ev (Kit.abs_diff a b) [ ("a", 3); ("b", 9) ])

let test_rom () =
  let contents = [| 10; 20; 30; 40; 50; 60; 70; 80 |] in
  let addr = Rtl.Input "n" in
  Array.iteri
    (fun i expect ->
      Alcotest.(check int) (Printf.sprintf "rom[%d]" i) expect
        (ev (Kit.rom 8 addr contents) [ ("n", i) ]))
    contents

let test_alu () =
  let op v = Rtl.Const (3, v) in
  let cases =
    [
      (0, (fun x y -> (x + y) land 0xFF));
      (1, (fun x y -> (x - y) land 0xFF));
      (2, (fun x y -> x land y));
      (3, (fun x y -> x lor y));
      (4, (fun x y -> x lxor y));
      (5, (fun x _ -> (x lsl 1) land 0xFF));
      (6, (fun x _ -> x lsr 1));
      (7, (fun x _ -> lnot x land 0xFF));
    ]
  in
  List.iter
    (fun (code, model) ->
      List.iter
        (fun (x, y) ->
          Alcotest.(check int)
            (Printf.sprintf "alu op %d on (%d, %d)" code x y)
            (model x y)
            (ev (Kit.alu 8 ~op:(op code) a b) [ ("a", x); ("b", y) ]))
        [ (0, 0); (5, 3); (200, 100); (255, 255) ])
    cases

let test_alu_flags () =
  let z, n = Kit.alu_flags 8 a in
  Alcotest.(check int) "zero flag" 1 (ev z [ ("a", 0) ]);
  Alcotest.(check int) "zero flag off" 0 (ev z [ ("a", 1) ]);
  Alcotest.(check int) "negative (msb)" 1 (ev n [ ("a", 0x80) ]);
  Alcotest.(check int) "msb off" 0 (ev n [ ("a", 0x7F) ])

let test_barrel_shl () =
  List.iter
    (fun (v, amt) ->
      Alcotest.(check int)
        (Printf.sprintf "barrel %d << %d" v amt)
        ((v lsl amt) land 0xFF)
        (ev (Kit.barrel_shl 8 a (Rtl.Input "n")) [ ("a", v); ("n", amt) ]))
    [ (1, 0); (1, 7); (0xAB, 3); (0xFF, 5) ]

let test_lfsr_nontrivial () =
  (* A maximal-ish LFSR must cycle through many states without repeating
     early. *)
  let d =
    {
      Rtl.name = "lfsr";
      inputs = [ ("tick", 1) ];
      regs = [ ("s", 8, 1) ];
      nexts = [ ("s", Kit.lfsr_next 8 ~taps:[ 0; 2; 3; 4 ] (Rtl.Reg "s")) ];
      outputs = [ ("s", Rtl.Reg "s") ];
    }
  in
  let env = ref (Rtl.initial_env d) in
  let seen = Hashtbl.create 64 in
  let period = ref 0 in
  (try
     for i = 1 to 300 do
       let outs, env' = Rtl.step d !env [ ("tick", 1) ] in
       env := env';
       let s = List.assoc "s" outs in
       if Hashtbl.mem seen s then begin
         period := i;
         raise Exit
       end;
       Hashtbl.add seen s ()
     done
   with Exit -> ());
  Alcotest.(check bool) "long period" true (!period = 0 || !period > 60)

let suite =
  ( "rtlkit",
    [
      Alcotest.test_case "zext" `Quick test_zext;
      Alcotest.test_case "shifts" `Quick test_shifts;
      Alcotest.test_case "rotl" `Quick test_rotl;
      Alcotest.test_case "popcount" `Quick test_popcount;
      Alcotest.test_case "min/max/absdiff" `Quick test_min_max_absdiff;
      Alcotest.test_case "rom" `Quick test_rom;
      Alcotest.test_case "alu" `Quick test_alu;
      Alcotest.test_case "alu flags" `Quick test_alu_flags;
      Alcotest.test_case "barrel shifter" `Quick test_barrel_shl;
      Alcotest.test_case "lfsr period" `Quick test_lfsr_nontrivial;
    ] )
