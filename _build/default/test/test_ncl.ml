module Ncl = Ee_ncl.Ncl
module Netlist = Ee_netlist.Netlist

let netlist_of id =
  Ee_rtl.Techmap.run_rtl ((Ee_bench_circuits.Itc99.find id).Ee_bench_circuits.Itc99.build ())

let test_equivalence () =
  List.iter
    (fun id ->
      let nl = netlist_of id in
      let ncl = Ncl.of_netlist nl in
      Alcotest.(check bool) (id ^ " matches golden model") true
        (Ncl.equiv_random ncl nl ~vectors:80 ~seed:7))
    [ "b01"; "b02"; "b06"; "b09"; "b10" ]

let test_block_expansion () =
  (* "NCL computation blocks are quite different from their synchronous
     counterparts": DIMS costs 2^k + 2 threshold gates per k-input LUT. *)
  let nl = netlist_of "b09" in
  let ncl = Ncl.of_netlist nl in
  let luts = Netlist.lut_count nl in
  Alcotest.(check bool) "at least 4x the gates" true (Ncl.gate_count ncl >= 4 * luts);
  Alcotest.(check bool) "at most 18x" true (Ncl.gate_count ncl <= 18 * luts)

let test_strongly_indicating () =
  (* No early evaluation is possible: outputs never assert before the last
     transitive input. *)
  List.iter
    (fun id ->
      let nl = netlist_of id in
      let ncl = Ncl.of_netlist nl in
      Alcotest.(check bool) (id ^ " strongly indicating") true
        (Ncl.strongly_indicating_witness ncl ~vectors:40 ~seed:11))
    [ "b02"; "b09"; "b11" ]

let test_null_wave_cost () =
  (* The NCL cycle pays the NULL traversal on top of the DATA wave. *)
  let nl = netlist_of "b11" in
  let ncl = Ncl.of_netlist nl in
  let r = Ncl.run_random ncl ~vectors:50 ~seed:3 in
  Alcotest.(check bool) "null wave comparable to data wave" true (r.Ncl.null_time > 0.);
  Alcotest.(check bool) "cycle > data + null" true
    (r.Ncl.avg_cycle > r.Ncl.avg_data_time +. r.Ncl.null_time);
  Alcotest.(check int) "waves" 50 r.Ncl.waves

let test_completion_inputs () =
  let nl = netlist_of "b09" in
  let ncl = Ncl.of_netlist nl in
  (* Outputs + register D rails. *)
  let expected = Array.length (Netlist.outputs nl) + Netlist.dff_count nl in
  Alcotest.(check int) "completion observes outputs and registers" expected
    (Ncl.completion_inputs ncl)

let test_constant_folding () =
  (* A netlist with constant nodes must map and simulate fine. *)
  let b = Netlist.builder () in
  let x = Netlist.add_input b "x" in
  let one = Netlist.add_const b true in
  let g =
    Netlist.add_lut b
      (Ee_logic.Lut4.logand (Ee_logic.Lut4.var 0) (Ee_logic.Lut4.var 1))
      [| x; one |]
  in
  Netlist.set_output b "y" g;
  let nl = Netlist.finalize b in
  let ncl = Ncl.of_netlist nl in
  Alcotest.(check bool) "const fed LUT works" true
    (Ncl.equiv_random ncl nl ~vectors:20 ~seed:1)

let test_vs_pl_latency () =
  (* The headline comparison: on an arithmetic circuit, PL with EE has a
     lower average wave latency than NCL's DATA wave (strong indication
     forbids NCL from exploiting early generate/kill), and NCL additionally
     pays the NULL wave. *)
  let nl = netlist_of "b11" in
  let ncl = Ncl.of_netlist nl in
  let pl = Ee_phased.Pl.of_netlist nl in
  let pl_ee, _ = Ee_core.Synth.run pl in
  let ncl_run = Ncl.run_random ncl ~vectors:100 ~seed:5 in
  let pl_run = Ee_sim.Sim.run_random pl_ee ~vectors:100 ~seed:5 in
  Alcotest.(check bool) "PL+EE wave beats NCL cycle" true
    (pl_run.Ee_sim.Sim.avg_settle_time < ncl_run.Ncl.avg_cycle)

let suite =
  ( "ncl",
    [
      Alcotest.test_case "equivalence" `Quick test_equivalence;
      Alcotest.test_case "block expansion" `Quick test_block_expansion;
      Alcotest.test_case "strongly indicating" `Quick test_strongly_indicating;
      Alcotest.test_case "null wave cost" `Quick test_null_wave_cost;
      Alcotest.test_case "completion inputs" `Quick test_completion_inputs;
      Alcotest.test_case "constant folding" `Quick test_constant_folding;
      Alcotest.test_case "PL+EE vs NCL latency" `Quick test_vs_pl_latency;
    ] )
