module Dm = Ee_sim.Delay_model
module Sim = Ee_sim.Sim
module Pl = Ee_phased.Pl

let pl_pair id =
  let nl = Ee_rtl.Techmap.run_rtl ((Ee_bench_circuits.Itc99.find id).Ee_bench_circuits.Itc99.build ()) in
  let pl = Pl.of_netlist nl in
  let pl_ee, _ = Ee_core.Synth.run pl in
  (nl, pl, pl_ee)

let run_with pl delays vectors seed =
  let t = Sim.create_with_delays ~delays pl in
  let rng = Ee_util.Prng.create seed in
  let width = Array.length (Pl.source_ids pl) in
  let acc = ref 0. in
  for _ = 1 to vectors do
    acc := !acc +. (Sim.apply t (Ee_util.Prng.bool_vector rng width)).Sim.settle_time
  done;
  !acc /. float_of_int vectors

let test_uniform_matches_default () =
  let _, pl, _ = pl_pair "b05" in
  let uniform = Dm.uniform pl ~gate_delay:1.0 in
  Alcotest.(check (float 1e-9)) "same as plain create"
    (Sim.run_random pl ~vectors:30 ~seed:3).Sim.avg_settle_time
    (run_with pl uniform 30 3)

let test_jitter_bounds () =
  let _, pl, _ = pl_pair "b05" in
  let d = Dm.jittered pl ~gate_delay:1.0 ~spread:0.3 ~seed:7 in
  Array.iter
    (fun x -> Alcotest.(check bool) "within band" true (x >= 0.7 -. 1e-9 && x <= 1.3 +. 1e-9))
    d;
  Alcotest.(check bool) "not all equal" true (Array.exists (fun x -> x <> d.(0)) d);
  (* Deterministic in the seed. *)
  Alcotest.(check bool) "deterministic" true
    (Dm.jittered pl ~gate_delay:1.0 ~spread:0.3 ~seed:7 = d)

let test_jitter_validation () =
  let _, pl, _ = pl_pair "b02" in
  match Dm.jittered pl ~gate_delay:1.0 ~spread:1.5 ~seed:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected spread validation"

let test_fanin_loaded () =
  let _, pl, _ = pl_pair "b04" in
  let d = Dm.fanin_loaded pl ~gate_delay:1.0 ~per_input:0.25 in
  Array.iteri
    (fun i g ->
      let expect = 1.0 +. (0.25 *. float_of_int (max 0 (Array.length g.Pl.fanin - 1))) in
      Alcotest.(check (float 1e-9)) "loading formula" expect d.(i))
    (Pl.gates pl)

let test_values_unaffected_by_delays () =
  (* Delay assignment changes timing, never functionality. *)
  let nl, _, pl_ee = pl_pair "b09" in
  let delays = Dm.jittered pl_ee ~gate_delay:1.0 ~spread:0.5 ~seed:13 in
  let t = Sim.create_with_delays ~delays pl_ee in
  let st = ref (Ee_netlist.Netlist.initial_state nl) in
  let rng = Ee_util.Prng.create 21 in
  let width = Array.length (Pl.source_ids pl_ee) in
  for _ = 1 to 80 do
    let vec = Ee_util.Prng.bool_vector rng width in
    let w = Sim.apply t vec in
    let outs, st' = Ee_netlist.Netlist.step nl !st vec in
    st := st';
    Alcotest.(check bool) "outputs equal" true (w.Sim.outputs = outs)
  done

let test_ee_survives_jitter () =
  (* The Eq.1 choices are made under the unit-delay model; the speedup must
     persist (if attenuated) when the actual delays are jittered. *)
  let _, pl, pl_ee = pl_pair "b04" in
  List.iter
    (fun spread ->
      let d_base = Dm.jittered pl ~gate_delay:1.0 ~spread ~seed:5 in
      (* The EE netlist has extra trigger gates: jitter them with the same
         seed stream plus the same spread. *)
      let d_ee = Dm.jittered pl_ee ~gate_delay:1.0 ~spread ~seed:5 in
      let base = run_with pl d_base 100 9 in
      let ee = run_with pl_ee d_ee 100 9 in
      Alcotest.(check bool)
        (Printf.sprintf "EE still wins at %.0f%% jitter (%.2f vs %.2f)" (spread *. 100.) ee base)
        true (ee < base))
    [ 0.; 0.2; 0.4 ]

let test_adversarial_ee () =
  let _, _, pl_ee = pl_pair "b04" in
  let d = Dm.adversarial_ee pl_ee ~gate_delay:1.0 ~slowdown:4.0 in
  Array.iteri
    (fun i g ->
      match g.Pl.kind with
      | Pl.Gate _ ->
          Alcotest.(check bool) "gate at base or slowed corner" true
            (abs_float (d.(i) -. 1.0) < 1e-9 || abs_float (d.(i) -. 4.0) < 1e-9)
      | _ -> Alcotest.(check (float 1e-9)) "non-Gate kinds keep gate_delay" 1.0 d.(i))
    (Pl.gates pl_ee);
  Alcotest.(check bool) "off-cone gates are slowed" true (Array.exists (fun x -> x > 3.9) d);
  (* Every direct fanin of a trigger is on its support cone, hence fast. *)
  Array.iter
    (fun g ->
      match g.Pl.kind with
      | Pl.Trigger _ ->
          Array.iter
            (fun f -> Alcotest.(check (float 1e-9)) "trigger cone keeps gate_delay" 1.0 d.(f))
            g.Pl.fanin
      | _ -> ())
    (Pl.gates pl_ee);
  match Dm.adversarial_ee pl_ee ~gate_delay:1.0 ~slowdown:0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected slowdown validation"

let test_extremal () =
  let _, pl, _ = pl_pair "b05" in
  let d = Dm.extremal pl ~gate_delay:2.0 ~spread:0.25 ~seed:9 in
  Array.iter
    (fun x ->
      Alcotest.(check bool) "at a corner of the delay cube" true
        (abs_float (x -. 1.5) < 1e-9 || abs_float (x -. 2.5) < 1e-9))
    d;
  Alcotest.(check bool) "both corners occupied" true
    (Array.exists (fun x -> x < 2.) d && Array.exists (fun x -> x > 2.) d);
  Alcotest.(check bool) "deterministic in the seed" true
    (Dm.extremal pl ~gate_delay:2.0 ~spread:0.25 ~seed:9 = d)

let test_rounds_of_delays () =
  Alcotest.(check (array int)) "fastest gate maps to zero extra rounds"
    [| 0; 2; 6; 0 |]
    (Dm.rounds_of_delays [| 1.0; 2.0; 4.0; 1.0 |] ~resolution:2);
  (match Dm.rounds_of_delays [| 0.0; 1.0 |] ~resolution:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected positive-delay validation");
  match Dm.rounds_of_delays [| 1.0 |] ~resolution:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected resolution validation"

let suite =
  ( "delay-model",
    [
      Alcotest.test_case "uniform matches default" `Quick test_uniform_matches_default;
      Alcotest.test_case "jitter bounds" `Quick test_jitter_bounds;
      Alcotest.test_case "jitter validation" `Quick test_jitter_validation;
      Alcotest.test_case "fanin loading" `Quick test_fanin_loaded;
      Alcotest.test_case "values unaffected" `Quick test_values_unaffected_by_delays;
      Alcotest.test_case "EE survives jitter" `Quick test_ee_survives_jitter;
      Alcotest.test_case "adversarial EE schedule" `Quick test_adversarial_ee;
      Alcotest.test_case "extremal corners" `Quick test_extremal;
      Alcotest.test_case "rounds quantization" `Quick test_rounds_of_delays;
    ] )
