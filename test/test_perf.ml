module Tg = Ee_perf.Timed_graph
module Mcr = Ee_perf.Mcr
module Throughput = Ee_perf.Throughput
module Mg = Ee_markedgraph.Marked_graph
module Pl = Ee_phased.Pl
module Ss = Ee_sim.Stream_sim

let feq = Alcotest.float 1e-9

let build id =
  let b = Ee_bench_circuits.Itc99.find id in
  let nl = Ee_rtl.Techmap.run_rtl (b.Ee_bench_circuits.Itc99.build ()) in
  let pl = Pl.of_netlist nl in
  let pl_ee, _ = Ee_core.Synth.run pl in
  (pl, pl_ee)

let lambda_of g =
  match Mcr.solve g with
  | Some r -> r.Mcr.lambda
  | None -> Alcotest.fail "expected a cycle"

(* ---------------------------------------------------------------- *)
(* Hand-checkable graphs                                             *)
(* ---------------------------------------------------------------- *)

let arc src dst weight tokens = { Tg.src; dst; weight; tokens }

let test_hand_graphs () =
  (* Two-node handshake: forward arc with the token, backward without;
     period = sum of delays. *)
  let g = Tg.make ~nodes:2 ~arcs:[ arc 0 1 1.5 1; arc 1 0 2.5 0 ] in
  Alcotest.check feq "handshake" 4.0 (lambda_of g);
  (* Self-loop: one token, own delay. *)
  let g = Tg.make ~nodes:1 ~arcs:[ arc 0 0 3.0 1 ] in
  Alcotest.check feq "self loop" 3.0 (lambda_of g);
  (* Two competing cycles: 6/2 < 7/1 — the critical one wins. *)
  let g =
    Tg.make ~nodes:3
      ~arcs:[ arc 0 1 3.0 1; arc 1 0 3.0 1; arc 1 2 5.0 0; arc 2 1 2.0 1 ]
  in
  Alcotest.check feq "competing cycles" 7.0 (lambda_of g);
  (match Mcr.solve g with
  | Some r ->
      Alcotest.(check (list int)) "critical cycle nodes" [ 1; 2 ] (List.sort compare r.Mcr.cycle)
  | None -> Alcotest.fail "cycle expected");
  (* Multi-token arc: 6 units of work, 3 tokens. *)
  let g = Tg.make ~nodes:2 ~arcs:[ arc 0 1 4.0 2; arc 1 0 2.0 1 ] in
  Alcotest.check feq "multi-token cycle" 2.0 (lambda_of g);
  (* Acyclic graph: no steady-state constraint. *)
  let g = Tg.make ~nodes:3 ~arcs:[ arc 0 1 1.0 0; arc 1 2 1.0 1 ] in
  Alcotest.(check bool) "acyclic -> None" true (Mcr.solve g = None);
  Alcotest.(check bool) "karp acyclic -> None" true (Mcr.karp g = None)

let test_not_live_detected () =
  let g = Tg.make ~nodes:2 ~arcs:[ arc 0 1 1.0 0; arc 1 0 1.0 0 ] in
  (match Mcr.solve g with
  | exception Mcr.Not_live _ -> ()
  | _ -> Alcotest.fail "Howard must reject a token-free cycle");
  match Mcr.karp g with
  | exception Mcr.Not_live _ -> ()
  | _ -> Alcotest.fail "Karp must reject a token-free cycle"

let test_slack_and_potentials () =
  let g =
    Tg.make ~nodes:3
      ~arcs:[ arc 0 1 3.0 1; arc 1 0 3.0 1; arc 1 2 5.0 0; arc 2 1 2.0 1 ]
  in
  let lambda = lambda_of g in
  let slacks = Mcr.arc_slacks g ~lambda in
  (* The 7/1 cycle (arcs 2 and 3) is tight; the 6/2 cycle has play. *)
  Alcotest.check feq "critical arc slack" 0.0 slacks.(2);
  Alcotest.check feq "critical arc slack" 0.0 slacks.(3);
  Alcotest.(check bool) "non-critical cycle has slack" true
    (slacks.(0) +. slacks.(1) > 1.0);
  Array.iter
    (fun s -> Alcotest.(check bool) "slack non-negative" true (s >= -1e-9))
    slacks;
  (* Below the MCR there is a positive cycle: potentials must refuse. *)
  match Mcr.potentials g ~lambda:(lambda -. 0.5) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "potentials below lambda* must diverge"

(* ---------------------------------------------------------------- *)
(* Karp vs Howard on random live graphs                              *)
(* ---------------------------------------------------------------- *)

(* Random graphs guaranteed live: nodes get random levels; an arc carries a
   token unless it goes strictly uphill, so every token-free path ascends
   and no token-free cycle can close.  A Hamiltonian backbone keeps the
   graph strongly connected (hence every node on a cycle). *)
let random_live_graph rng =
  let open Ee_util in
  let n = 3 + Prng.int rng 22 in
  let levels = Array.init n (fun _ -> Prng.int rng 6) in
  let arcs = ref [] in
  let add u v =
    let tokens =
      if levels.(u) < levels.(v) && Prng.bool rng then 0
      else 1 + Prng.int rng 2
    in
    let weight = float_of_int (Prng.int rng 1000) /. 100. in
    arcs := arc u v weight tokens :: !arcs
  in
  for u = 0 to n - 1 do
    add u ((u + 1) mod n)
  done;
  let extra = n + Prng.int rng (2 * n) in
  for _ = 1 to extra do
    let u = Prng.int rng n and v = Prng.int rng n in
    add u v
  done;
  Tg.make ~nodes:n ~arcs:!arcs

let test_karp_equals_howard_random () =
  let rng = Ee_util.Prng.create 7701 in
  for i = 1 to 200 do
    let g = random_live_graph rng in
    let howard = lambda_of g in
    match Mcr.karp g with
    | None -> Alcotest.failf "graph %d: Karp found no cycle" i
    | Some karp ->
        if Float.abs (karp -. howard) > 1e-9 *. Float.max 1. (Float.abs howard)
        then
          Alcotest.failf "graph %d: Howard %.12f vs Karp %.12f" i howard karp
  done

(* ---------------------------------------------------------------- *)
(* Rings: analytic period vs canopy bound vs simulator               *)
(* ---------------------------------------------------------------- *)

let test_ring_matches_canopy () =
  List.iter
    (fun (stages, tokens) ->
      let ring = Ee_sim.Ring.build ~stages ~tokens in
      let a = Throughput.analyze ring.Ee_sim.Ring.pl in
      let bound = Ee_sim.Ring.theoretical_period ring in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "ring %d/%d analytic = canopy" stages tokens)
        bound a.Throughput.lambda;
      let measured = Ee_sim.Ring.period ~waves:240 ring in
      Alcotest.(check bool)
        (Printf.sprintf "ring %d/%d analytic ~ measured" stages tokens)
        true
        (Float.abs (measured -. a.Throughput.lambda) /. a.Throughput.lambda
        < 0.02))
    [ (8, 2); (8, 4); (9, 3); (12, 5) ]

(* ---------------------------------------------------------------- *)
(* ITC99: Karp cross-check and simulator agreement                   *)
(* ---------------------------------------------------------------- *)

let benchmarks =
  [ "b01"; "b02"; "b03"; "b04"; "b05"; "b06"; "b07"; "b08"; "b09"; "b10";
    "b11"; "b12"; "b13"; "b14"; "b15" ]

let test_itc99_karp_agrees () =
  List.iter
    (fun id ->
      let pl, pl_ee = build id in
      List.iter
        (fun (tag, netlist, mode) ->
          let m = Tg.of_pl ?mode netlist in
          let howard = lambda_of m.Tg.graph in
          match Mcr.karp m.Tg.graph with
          | None -> Alcotest.failf "%s %s: no cycle?" id tag
          | Some karp ->
              if Float.abs (karp -. howard) > 1e-9 *. Float.max 1. howard then
                Alcotest.failf "%s %s: Howard %.12f vs Karp %.12f" id tag
                  howard karp)
        [ ("no-ee", pl, None); ("ee", pl_ee, Some Tg.Eager) ])
    benchmarks

let test_itc99_analysis_matches_sim () =
  List.iter
    (fun id ->
      let pl, _ = build id in
      let a = Throughput.analyze pl in
      let r = Ss.run_random pl ~waves:240 ~seed:11 in
      let err =
        Float.abs (r.Ss.cycle_time -. a.Throughput.lambda)
        /. a.Throughput.lambda *. 100.
      in
      if err > 5.0 then
        Alcotest.failf "%s: analytic %.4f vs simulated %.4f (%.2f%% off)" id
          a.Throughput.lambda r.Ss.cycle_time err)
    benchmarks

let test_itc99_ee_modes_bracket_sim () =
  List.iter
    (fun id ->
      let _, pl_ee = build id in
      let eager = (Throughput.analyze ~mode:Tg.Eager pl_ee).Throughput.lambda in
      let expected = (Throughput.analyze pl_ee).Throughput.lambda in
      let guarded =
        (Throughput.analyze ~mode:Tg.Guarded pl_ee).Throughput.lambda
      in
      Alcotest.(check bool) (id ^ " eager <= expected") true
        (eager <= expected +. 1e-9);
      Alcotest.(check bool) (id ^ " expected <= guarded") true
        (expected <= guarded +. 1e-9);
      let r = Ss.run_random pl_ee ~waves:240 ~seed:11 in
      Alcotest.(check bool)
        (Printf.sprintf "%s sim %.3f within [eager %.3f - 5%%, guarded %.3f + 5%%]"
           id r.Ss.cycle_time eager guarded)
        true
        (r.Ss.cycle_time >= (eager *. 0.95) -. 1e-9
        && r.Ss.cycle_time <= (guarded *. 1.05) +. 1e-9))
    [ "b01"; "b04"; "b06"; "b09"; "b12" ]

let test_jittered_delays_agree () =
  (* Per-gate delay schedules flow through both the analyzer and the
     streaming simulator; the analytic period must keep tracking the
     measured one when the unit-delay assumption breaks. *)
  List.iter
    (fun id ->
      let pl, _ = build id in
      let delays = Ee_sim.Delay_model.jittered pl ~gate_delay:1.0 ~spread:0.4 ~seed:5 in
      let a = Throughput.analyze ~delays pl in
      let r = Ss.run_random ~delays pl ~waves:240 ~seed:11 in
      let err =
        Float.abs (r.Ss.cycle_time -. a.Throughput.lambda)
        /. a.Throughput.lambda *. 100.
      in
      if err > 5.0 then
        Alcotest.failf "%s jittered: analytic %.4f vs simulated %.4f (%.2f%%)"
          id a.Throughput.lambda r.Ss.cycle_time err)
    [ "b01"; "b06"; "b11" ]

let test_critical_cycle_names_gates () =
  let pl, _ = build "b04" in
  let a = Throughput.analyze pl in
  Alcotest.(check bool) "critical cycle non-empty" true
    (a.Throughput.critical_gates <> []);
  Alcotest.(check bool) "cycle string closes" true
    (String.length a.Throughput.critical_string > 0
    &&
    match String.index_opt a.Throughput.critical_string '>' with
    | Some _ -> true
    | None -> false);
  (* Critical gates have (near-)zero slack. *)
  List.iter
    (fun g ->
      Alcotest.(check bool) "critical gate slack ~ 0" true
        (a.Throughput.gate_slack.(g) < 1e-6))
    a.Throughput.critical_gates;
  (* Bottlenecks are sorted by slack and start with a critical gate. *)
  match Throughput.bottlenecks a 5 with
  | (g0, s0) :: _ ->
      Alcotest.(check bool) "tightest slack ~ 0" true (s0 < 1e-6);
      Alcotest.(check bool) "tightest is critical" true
        (List.mem g0 a.Throughput.critical_gates)
  | [] -> Alcotest.fail "no bottlenecks reported"

let test_mcr_selection () =
  (* b12 is loop-bound (EE demonstrably helps it); the MCR-driven policy
     must find gains there with no more triggers than Eq. 1 spends. *)
  let b = Ee_bench_circuits.Itc99.find "b12" in
  let nl = Ee_rtl.Techmap.run_rtl (b.Ee_bench_circuits.Itc99.build ()) in
  let pl = Pl.of_netlist nl in
  let _, rep_eq1 = Ee_core.Synth.run pl in
  let pl_mcr, rep_mcr = Ee_core.Mcr_select.run pl in
  Alcotest.(check bool) "inserts at least one pair" true
    (rep_mcr.Ee_core.Synth.ee_gates >= 1);
  Alcotest.(check bool) "spends fewer triggers than Eq. 1" true
    (rep_mcr.Ee_core.Synth.ee_gates <= rep_eq1.Ee_core.Synth.ee_gates);
  (* The predicted period must improve over no-EE... *)
  let lam_no_ee = (Throughput.analyze pl).Throughput.lambda in
  let lam_mcr = (Throughput.analyze pl_mcr).Throughput.lambda in
  Alcotest.(check bool) "predicted period improves" true (lam_mcr < lam_no_ee);
  (* ...and the measured gain must be real. *)
  let gain = Ss.throughput_gain pl pl_mcr ~waves:200 ~seed:4 in
  Alcotest.(check bool) "measured gain positive" true (gain > 0.);
  (* EE must never change values: spot-check against the golden model. *)
  let rng = Ee_util.Prng.create 99 in
  let width = Array.length (Ee_netlist.Netlist.inputs nl) in
  let vectors = List.init 60 (fun _ -> Ee_util.Prng.bool_vector rng width) in
  let golden =
    let st = ref (Ee_netlist.Netlist.initial_state nl) in
    List.map
      (fun vec ->
        let outs, st' = Ee_netlist.Netlist.step nl !st vec in
        st := st';
        outs)
      vectors
  in
  let r = Ss.run pl_mcr ~vectors in
  List.iteri
    (fun w exp ->
      if r.Ss.outputs.(w) <> exp then
        Alcotest.failf "wave %d differs from golden model" w)
    golden;
  (* The extended marked graph stays live and safe. *)
  match Mg.check_live_safe (Pl.to_marked_graph pl_mcr) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "not live/safe: %s" e

let suite =
  ( "perf",
    [
      Alcotest.test_case "hand graphs" `Quick test_hand_graphs;
      Alcotest.test_case "token-free cycles rejected" `Quick test_not_live_detected;
      Alcotest.test_case "slack and potentials" `Quick test_slack_and_potentials;
      Alcotest.test_case "Karp = Howard on 200 random live graphs" `Quick
        test_karp_equals_howard_random;
      Alcotest.test_case "ring analytic = canopy = simulated" `Slow
        test_ring_matches_canopy;
      Alcotest.test_case "ITC99 Karp = Howard" `Slow test_itc99_karp_agrees;
      Alcotest.test_case "ITC99 analytic within 5% of stream sim" `Slow
        test_itc99_analysis_matches_sim;
      Alcotest.test_case "EE modes bracket the simulator" `Slow
        test_itc99_ee_modes_bracket_sim;
      Alcotest.test_case "jittered delay schedules agree" `Slow
        test_jittered_delays_agree;
      Alcotest.test_case "critical cycle names gates" `Quick
        test_critical_cycle_names_gates;
      Alcotest.test_case "MCR-driven selection works" `Slow test_mcr_selection;
    ] )
