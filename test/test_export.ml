module Blif = Ee_export.Blif
module Vhdl = Ee_export.Vhdl
module Netlist = Ee_netlist.Netlist

let netlist_of id = Ee_rtl.Techmap.run_rtl ((Ee_bench_circuits.Itc99.find id).Ee_bench_circuits.Itc99.build ())

let equiv_netlists a b cycles seed =
  (* Same ports assumed (possibly reordered); compare by name. *)
  let rng = Ee_util.Prng.create seed in
  let ins_a = Netlist.inputs a and ins_b = Netlist.inputs b in
  Alcotest.(check int) "same input count" (Array.length ins_a) (Array.length ins_b);
  let sta = ref (Netlist.initial_state a) and stb = ref (Netlist.initial_state b) in
  for _ = 1 to cycles do
    let values = Array.map (fun (n, _) -> (n, Ee_util.Prng.bool rng)) ins_a in
    let vec_for nl =
      Array.map
        (fun (n, _) -> List.assoc n (Array.to_list values))
        (Netlist.inputs nl)
    in
    let outs_a, sta' = Netlist.step a !sta (vec_for a) in
    let outs_b, stb' = Netlist.step b !stb (vec_for b) in
    sta := sta';
    stb := stb';
    let by_name nl outs =
      List.sort compare
        (Array.to_list (Array.mapi (fun k (n, _) -> (n, outs.(k))) (Netlist.outputs nl)))
    in
    if by_name a outs_a <> by_name b outs_b then Alcotest.fail "outputs diverge"
  done

let test_blif_roundtrip () =
  (* parse (to_blif n) must accept and reproduce every ITC99 netlist. *)
  List.iter
    (fun b ->
      let id = b.Ee_bench_circuits.Itc99.id in
      let nl = Ee_rtl.Techmap.run_rtl (b.Ee_bench_circuits.Itc99.build ()) in
      match Blif.parse (Blif.to_blif ~model:id nl) with
      | Error msg -> Alcotest.failf "%s: %s" id msg
      | Ok nl' ->
          (* The exporter may insert buffer LUTs, so gate counts are not
             preserved; state element count and behaviour are. *)
          Alcotest.(check int) (id ^ " dff count") (Netlist.dff_count nl)
            (Netlist.dff_count nl');
          equiv_netlists nl nl' 80 11)
    Ee_bench_circuits.Itc99.all

let test_blif_parse_error_result () =
  (* Blif.parse is the non-raising face of of_blif. *)
  match Blif.parse ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n" with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error msg ->
      Alcotest.(check bool) "mentions the line" true
        (Astring_contains.contains msg "line")

let test_blif_parse_handwritten () =
  let text =
    ".model half_adder\n\
     .inputs a b\n\
     .outputs sum carry\n\
     # xor via two cubes\n\
     .names a b sum\n\
     10 1\n\
     01 1\n\
     .names a b carry\n\
     11 1\n\
     .end\n"
  in
  let nl = Blif.of_blif text in
  Alcotest.(check int) "two luts" 2 (Netlist.lut_count nl);
  let outs, _ = Netlist.step nl (Netlist.initial_state nl) [| true; true |] in
  Alcotest.(check (array bool)) "1+1" [| false; true |] outs;
  let outs, _ = Netlist.step nl (Netlist.initial_state nl) [| true; false |] in
  Alcotest.(check (array bool)) "1+0" [| true; false |] outs

let test_blif_latch () =
  let text =
    ".model counter1\n\
     .inputs en\n\
     .outputs q\n\
     .names q en d\n\
     10 1\n\
     01 1\n\
     .latch d q re NIL 0\n\
     .end\n"
  in
  let nl = Blif.of_blif text in
  Alcotest.(check int) "one dff" 1 (Netlist.dff_count nl);
  let st = ref (Netlist.initial_state nl) in
  let seq = List.init 4 (fun _ ->
      let outs, st' = Netlist.step nl !st [| true |] in
      st := st';
      outs.(0))
  in
  Alcotest.(check (list bool)) "toggles" [ false; true; false; true ] seq

let test_blif_off_cover () =
  (* Cover given as OFF-set (output column 0). *)
  let text =
    ".model inv\n.inputs a\n.outputs y\n.names a y\n1 0\n.end\n"
  in
  let nl = Blif.of_blif text in
  let outs, _ = Netlist.step nl (Netlist.initial_state nl) [| true |] in
  Alcotest.(check bool) "not 1" false outs.(0);
  let outs, _ = Netlist.step nl (Netlist.initial_state nl) [| false |] in
  Alcotest.(check bool) "not 0" true outs.(0)

let test_blif_constants () =
  let text = ".model k\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end\n" in
  let nl = Blif.of_blif text in
  let outs, _ = Netlist.step nl (Netlist.initial_state nl) [| false |] in
  Alcotest.(check (array bool)) "constants" [| true; false |] outs

let test_blif_errors () =
  let expect_error text =
    match Blif.of_blif text with
    | exception Blif.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect_error ".model m\n.inputs a\n.outputs y\n.names a b c d e y\n11111 1\n.end\n";
  expect_error ".model m\n.inputs a\n.outputs y\n.end\n";
  expect_error ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n";
  expect_error ".model m\n.inputs a\n.outputs y\n.subckt foo\n.end\n"

let test_vhdl_structure () =
  let nl = netlist_of "b09" in
  let pl = Ee_phased.Pl.of_netlist nl in
  let pl_ee, report = Ee_core.Synth.run pl in
  let text = Vhdl.of_pl ~entity:"b09_pl" pl_ee in
  Alcotest.(check bool) "entity" true (Astring_contains.contains text "entity b09_pl is");
  Alcotest.(check bool) "architecture" true
    (Astring_contains.contains text "architecture structural of b09_pl");
  Alcotest.(check bool) "has ee component" true
    (Astring_contains.contains text "pl4gate_ee");
  (* One pl4gate_ee instance per EE pair. *)
  let count_substring hay needle =
    let rec go i acc =
      if i + String.length needle > String.length hay then acc
      else if String.sub hay i (String.length needle) = needle then
        go (i + String.length needle) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "ee instances"
    report.Ee_core.Synth.ee_gates
    (count_substring text ": pl4gate_ee generic map");
  Alcotest.(check int) "trigger instances"
    report.Ee_core.Synth.ee_gates
    (count_substring text "-- EE trigger")

let test_vhdl_deterministic () =
  let nl = netlist_of "b02" in
  Alcotest.(check string) "same text" (Vhdl.of_netlist nl) (Vhdl.of_netlist nl)

let suite =
  ( "export",
    [
      Alcotest.test_case "blif roundtrip (all 15)" `Quick test_blif_roundtrip;
      Alcotest.test_case "blif parse error result" `Quick test_blif_parse_error_result;
      Alcotest.test_case "blif handwritten" `Quick test_blif_parse_handwritten;
      Alcotest.test_case "blif latch" `Quick test_blif_latch;
      Alcotest.test_case "blif off cover" `Quick test_blif_off_cover;
      Alcotest.test_case "blif constants" `Quick test_blif_constants;
      Alcotest.test_case "blif errors" `Quick test_blif_errors;
      Alcotest.test_case "vhdl structure" `Quick test_vhdl_structure;
      Alcotest.test_case "vhdl deterministic" `Quick test_vhdl_deterministic;
    ] )
