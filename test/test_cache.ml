(* The content-addressed result cache: key discipline, LRU eviction under a
   byte budget, disk persistence, and concurrent access. *)

module Cache = Ee_cache.Cache

let test_key_separation () =
  (* The length-prefixed separator must keep part boundaries distinct. *)
  Alcotest.(check bool) "ab|c <> a|bc" true (Cache.key [ "ab"; "c" ] <> Cache.key [ "a"; "bc" ]);
  Alcotest.(check bool) "order-sensitive" true (Cache.key [ "a"; "b" ] <> Cache.key [ "b"; "a" ]);
  Alcotest.(check string) "deterministic" (Cache.key [ "x"; "y" ]) (Cache.key [ "x"; "y" ]);
  Alcotest.(check bool) "empty parts distinct" true
    (Cache.key [ "" ] <> Cache.key [ ""; "" ])

let test_find_add_counters () =
  let c = Cache.create () in
  let k = Cache.key [ "synth"; "netlist-text"; "spec" ] in
  Alcotest.(check (option string)) "miss before add" None (Cache.find c k);
  Cache.add c ~key:k "payload";
  Alcotest.(check (option string)) "hit after add" (Some "payload") (Cache.find c k);
  Cache.add c ~key:k "payload2";
  Alcotest.(check (option string)) "refresh replaces" (Some "payload2") (Cache.find c k);
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Alcotest.(check int) "insertions" 2 s.Cache.insertions;
  Alcotest.(check int) "entries" 1 s.Cache.entries

let test_lru_eviction () =
  (* Budget fits ~3 of these entries; the least recently used must go. *)
  let payload = String.make 100 'x' in
  let entry_bytes = 100 + String.length (Cache.key [ "0" ]) in
  let c = Cache.create ~max_bytes:(3 * entry_bytes) () in
  let key i = Cache.key [ string_of_int i ] in
  Cache.add c ~key:(key 1) payload;
  Cache.add c ~key:(key 2) payload;
  Cache.add c ~key:(key 3) payload;
  (* Touch 1 so 2 becomes the LRU victim. *)
  Alcotest.(check bool) "1 still present" true (Cache.find c (key 1) <> None);
  Cache.add c ~key:(key 4) payload;
  Alcotest.(check (option string)) "LRU entry 2 evicted" None (Cache.find c (key 2));
  Alcotest.(check bool) "recent entries survive" true
    (Cache.find c (key 1) <> None && Cache.find c (key 3) <> None && Cache.find c (key 4) <> None);
  let s = Cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check bool) "budget honoured" true (s.Cache.bytes <= s.Cache.max_bytes)

let test_oversize_value () =
  let c = Cache.create ~max_bytes:64 () in
  Cache.add c ~key:(Cache.key [ "big" ]) (String.make 1000 'y');
  let s = Cache.stats c in
  Alcotest.(check int) "oversize value not kept in memory" 0 s.Cache.entries;
  Alcotest.(check int) "no lingering bytes" 0 s.Cache.bytes

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ee_cache_test_%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let test_persistence () =
  with_temp_dir (fun dir ->
      let k = Cache.key [ "persisted" ] in
      let c1 = Cache.create ~persist_dir:dir () in
      Cache.add c1 ~key:k "survives restarts";
      (* A second cache over the same directory — as after a daemon
         restart — must serve the entry from disk and re-populate memory. *)
      let c2 = Cache.create ~persist_dir:dir () in
      Alcotest.(check (option string)) "served from disk" (Some "survives restarts")
        (Cache.find c2 k);
      let s = Cache.stats c2 in
      Alcotest.(check int) "counted as a disk hit" 1 s.Cache.disk_hits;
      Alcotest.(check int) "now resident" 1 s.Cache.entries;
      (* Second lookup is a memory hit. *)
      ignore (Cache.find c2 k);
      Alcotest.(check int) "memory hit after re-population" 1 (Cache.stats c2).Cache.hits)

let test_cross_instance_tier () =
  (* Two live caches over one directory — as with two daemons sharing a
     host tier.  Writes from either side are visible to the other via
     disk, and concurrent writers never corrupt the index. *)
  with_temp_dir (fun dir ->
      let a = Cache.create ~persist_dir:dir () in
      let b = Cache.create ~persist_dir:dir () in
      let ka = Cache.key [ "from-a" ] and kb = Cache.key [ "from-b" ] in
      Cache.add a ~key:ka "written by a";
      Cache.add b ~key:kb "written by b";
      Alcotest.(check (option string)) "b sees a's entry" (Some "written by a")
        (Cache.find b ka);
      Alcotest.(check (option string)) "a sees b's entry" (Some "written by b")
        (Cache.find a kb);
      (* Overwrites append to the index; stats must count each key once,
         at its latest size. *)
      Cache.add a ~key:ka "rewritten by a, longer payload";
      match Cache.tier_stats a with
      | None -> Alcotest.fail "tier_stats on a persistent cache"
      | Some ts ->
          Alcotest.(check int) "two distinct keys on disk" 2 ts.Cache.tier_entries;
          Alcotest.(check int) "latest sizes, not the sum of history"
            (String.length "rewritten by a, longer payload" + String.length "written by b")
            ts.Cache.tier_bytes)

let test_preload () =
  with_temp_dir (fun dir ->
      let writer = Cache.create ~persist_dir:dir () in
      for i = 1 to 5 do
        Cache.add writer ~key:(Cache.key [ "warm"; string_of_int i ])
          (Printf.sprintf "payload-%d" i)
      done;
      (* A fresh instance starts cold, then preload pulls the tier into
         memory so the first lookups are already memory hits. *)
      let fresh = Cache.create ~persist_dir:dir () in
      Alcotest.(check int) "empty before preload" 0 (Cache.stats fresh).Cache.entries;
      Alcotest.(check int) "preload loads every entry" 5 (Cache.preload fresh);
      Alcotest.(check int) "resident after preload" 5 (Cache.stats fresh).Cache.entries;
      ignore (Cache.find fresh (Cache.key [ "warm"; "3" ]));
      let s = Cache.stats fresh in
      Alcotest.(check int) "memory hit, no disk round-trip" 1 s.Cache.hits;
      Alcotest.(check int) "no disk hits" 0 s.Cache.disk_hits;
      (* preload is idempotent and bounded by ?limit. *)
      Alcotest.(check int) "already resident" 0 (Cache.preload fresh);
      let capped = Cache.create ~persist_dir:dir () in
      Alcotest.(check int) "limit honoured" 2 (Cache.preload ~limit:2 capped);
      (* A memory-only cache has no tier to preload. *)
      let mem = Cache.create () in
      Alcotest.(check int) "no tier, nothing loaded" 0 (Cache.preload mem);
      Alcotest.(check bool) "no tier stats" true (Cache.tier_stats mem = None))

let test_index_healing () =
  (* The index is a convenience; deleting it must not lose the tier.  A
     new instance rebuilds it by scanning the content-addressed files. *)
  with_temp_dir (fun dir ->
      let writer = Cache.create ~persist_dir:dir () in
      let k1 = Cache.key [ "heal"; "1" ] and k2 = Cache.key [ "heal"; "2" ] in
      Cache.add writer ~key:k1 "one";
      Cache.add writer ~key:k2 "two";
      Sys.remove (Filename.concat dir "index");
      let healed = Cache.create ~persist_dir:dir () in
      Alcotest.(check int) "both entries recovered by scan" 2 (Cache.preload healed);
      Alcotest.(check (option string)) "payload intact" (Some "one") (Cache.find healed k1);
      Alcotest.(check bool) "index rewritten" true
        (Sys.file_exists (Filename.concat dir "index")))

let test_clear () =
  let c = Cache.create () in
  Cache.add c ~key:(Cache.key [ "a" ]) "1";
  Cache.add c ~key:(Cache.key [ "b" ]) "2";
  Cache.clear c;
  let s = Cache.stats c in
  Alcotest.(check int) "no entries" 0 s.Cache.entries;
  Alcotest.(check int) "no bytes" 0 s.Cache.bytes;
  Alcotest.(check (option string)) "entries gone" None (Cache.find c (Cache.key [ "a" ]))

let test_concurrent_access () =
  (* Several domains hammering a small cache: no crash, no torn values —
     every successful find returns exactly the payload its key encodes. *)
  let c = Cache.create ~max_bytes:4096 () in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let ok = ref true in
            for i = 1 to 500 do
              let v = (d * 10) + (i mod 17) in
              let k = Cache.key [ "shared"; string_of_int v ] in
              let payload = Printf.sprintf "value-%d" v in
              Cache.add c ~key:k payload;
              (match Cache.find c k with
              | Some got when got <> payload -> ok := false
              | _ -> ())
            done;
            !ok))
  in
  Alcotest.(check bool) "no torn reads under contention" true
    (List.for_all Fun.id (List.map Domain.join domains));
  let s = Cache.stats c in
  Alcotest.(check bool) "budget honoured under contention" true
    (s.Cache.bytes <= s.Cache.max_bytes)

(* ---- checksummed tier entries: corruption and quarantine ---- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all
let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let index_lines dir =
  In_channel.with_open_bin (Filename.concat dir "index") (fun ic ->
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> ());
      !n)

let test_truncated_entry_quarantined () =
  with_temp_dir (fun dir ->
      let k = Cache.key [ "fragile" ] in
      let w = Cache.create ~persist_dir:dir () in
      Cache.add w ~key:k "a payload long enough that truncation is detectable";
      (* Chop the tail off the entry file, as a crash mid-write (or an
         admin with dd) would. *)
      let path = Filename.concat dir k in
      let full = read_file path in
      write_file path (String.sub full 0 (String.length full - 10));
      (* A second instance over the same tier — as after a restart — must
         refuse to serve the damaged entry. *)
      let r = Cache.create ~persist_dir:dir () in
      Alcotest.(check (option string)) "corrupt entry never served" None (Cache.find r k);
      Alcotest.(check int) "counted as quarantined" 1 (Cache.stats r).Cache.quarantined;
      Alcotest.(check bool) "moved out of the serving namespace" false (Sys.file_exists path);
      Alcotest.(check bool) "kept under quarantine/ for post-mortem" true
        (Sys.file_exists (Filename.concat (Filename.concat dir "quarantine") k));
      (* Recomputing heals the tier: the key is servable again. *)
      Cache.add r ~key:k "recomputed";
      let r2 = Cache.create ~persist_dir:dir () in
      Alcotest.(check (option string)) "healed by rewrite" (Some "recomputed") (Cache.find r2 k))

let test_bitflip_entry_quarantined () =
  with_temp_dir (fun dir ->
      let k = Cache.key [ "bitrot" ] in
      let w = Cache.create ~persist_dir:dir () in
      Cache.add w ~key:k "payload-payload-payload";
      (* Flip one payload byte.  The size still matches the header, so
         only the digest can catch this. *)
      let path = Filename.concat dir k in
      let full = Bytes.of_string (read_file path) in
      let pos = Bytes.length full - 3 in
      Bytes.set full pos (if Bytes.get full pos = 'x' then 'y' else 'x');
      write_file path (Bytes.to_string full);
      let r = Cache.create ~persist_dir:dir () in
      Alcotest.(check (option string)) "flipped byte detected" None (Cache.find r k);
      Alcotest.(check int) "quarantined" 1 (Cache.stats r).Cache.quarantined)

let test_preload_quarantines_corrupt () =
  with_temp_dir (fun dir ->
      let w = Cache.create ~persist_dir:dir () in
      let keys = List.init 3 (fun i -> Cache.key [ "pre"; string_of_int i ]) in
      List.iteri (fun i k -> Cache.add w ~key:k (Printf.sprintf "value-%d" i)) keys;
      let victim = List.nth keys 1 in
      write_file (Filename.concat dir victim) "eecs1 ";
      let r = Cache.create ~persist_dir:dir () in
      Alcotest.(check int) "only intact entries preloaded" 2 (Cache.preload r);
      Alcotest.(check int) "corrupt entry quarantined during preload" 1
        (Cache.stats r).Cache.quarantined;
      Alcotest.(check (option string)) "intact entry warm" (Some "value-0")
        (Cache.find r (List.nth keys 0));
      Alcotest.(check (option string)) "victim is a plain miss" None (Cache.find r victim))

let test_compact_index () =
  with_temp_dir (fun dir ->
      let c = Cache.create ~persist_dir:dir () in
      let hot = Cache.key [ "rewritten" ] and cold = Cache.key [ "stable" ] in
      Cache.add c ~key:cold "once";
      for i = 1 to 5 do
        Cache.add c ~key:hot (Printf.sprintf "v%d" i)
      done;
      (* The index is append-only: five rewrites left five lines. *)
      Alcotest.(check int) "appends accumulate" 6 (index_lines dir);
      Alcotest.(check int) "dead lines dropped" 4 (Cache.compact_index c);
      Alcotest.(check int) "one line per live key" 2 (index_lines dir);
      (* Compaction kept the newest write of the rewritten key. *)
      let r = Cache.create ~persist_dir:dir () in
      ignore (Cache.preload r);
      Alcotest.(check (option string)) "newest value survives" (Some "v5") (Cache.find r hot);
      Alcotest.(check (option string)) "singleton untouched" (Some "once") (Cache.find r cold);
      Alcotest.(check int) "nothing left to drop" 0 (Cache.compact_index c))

let test_preload_auto_compacts () =
  with_temp_dir (fun dir ->
      let c = Cache.create ~persist_dir:dir () in
      let k = Cache.key [ "hot" ] in
      (* Ten generations of one key: nine dead index lines, enough to
         trip the automatic compaction threshold at preload time. *)
      for i = 1 to 10 do
        Cache.add c ~key:k (Printf.sprintf "gen-%d" i)
      done;
      Alcotest.(check int) "ten lines before" 10 (index_lines dir);
      let r = Cache.create ~persist_dir:dir () in
      Alcotest.(check int) "one distinct entry loaded" 1 (Cache.preload r);
      Alcotest.(check int) "index compacted as a side effect" 1 (index_lines dir);
      Alcotest.(check (option string)) "latest generation served" (Some "gen-10")
        (Cache.find r k))

let suite =
  ( "cache",
    [
      Alcotest.test_case "key separation" `Quick test_key_separation;
      Alcotest.test_case "find/add counters" `Quick test_find_add_counters;
      Alcotest.test_case "LRU eviction under byte budget" `Quick test_lru_eviction;
      Alcotest.test_case "oversize value bypasses memory" `Quick test_oversize_value;
      Alcotest.test_case "disk persistence across restart" `Quick test_persistence;
      Alcotest.test_case "cross-instance shared tier" `Quick test_cross_instance_tier;
      Alcotest.test_case "preload warms a fresh instance" `Quick test_preload;
      Alcotest.test_case "index healing after deletion" `Quick test_index_healing;
      Alcotest.test_case "clear" `Quick test_clear;
      Alcotest.test_case "concurrent domains" `Quick test_concurrent_access;
      Alcotest.test_case "truncated tier entry quarantined" `Quick
        test_truncated_entry_quarantined;
      Alcotest.test_case "checksum mismatch quarantined" `Quick
        test_bitflip_entry_quarantined;
      Alcotest.test_case "preload quarantines corrupt entries" `Quick
        test_preload_quarantines_corrupt;
      Alcotest.test_case "index compaction" `Quick test_compact_index;
      Alcotest.test_case "preload auto-compacts a bloated index" `Quick
        test_preload_auto_compacts;
    ] )
