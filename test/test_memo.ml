(* Explicit memoization contexts (Ee_util.Memo) and the Trigger candidate
   contexts built on them: caching, counters, merge semantics, per-domain
   defaults, and the mutex-wrapped Shared flavour. *)

module Memo = Ee_util.Memo
module Trigger = Ee_core.Trigger
module Lut4 = Ee_logic.Lut4

exception Kaboom

let test_find_or_add () =
  let m = Memo.create () in
  let computed = ref 0 in
  let compute k () =
    incr computed;
    k * 10
  in
  Alcotest.(check int) "miss computes" 30 (Memo.find_or_add m 3 (compute 3));
  Alcotest.(check int) "hit is served from the table" 30 (Memo.find_or_add m 3 (compute 3));
  Alcotest.(check int) "compute ran once" 1 !computed;
  Alcotest.(check int) "second key computes" 70 (Memo.find_or_add m 7 (compute 7));
  Alcotest.(check int) "entries" 2 (Memo.entries m);
  Alcotest.(check int) "hits" 1 (Memo.hits m);
  Alcotest.(check int) "misses" 2 (Memo.misses m);
  Alcotest.(check bool) "mem" true (Memo.mem m 3);
  Alcotest.(check (option int)) "find_opt hit" (Some 70) (Memo.find_opt m 7);
  Alcotest.(check (option int)) "find_opt miss" None (Memo.find_opt m 8)

let test_raise_stores_nothing () =
  let m = Memo.create () in
  (match Memo.find_or_add m 1 (fun () -> raise Kaboom) with
  | _ -> Alcotest.fail "expected Kaboom"
  | exception Kaboom -> ());
  Alcotest.(check bool) "nothing stored for the raising key" false (Memo.mem m 1);
  Alcotest.(check int) "a later compute can still succeed" 5
    (Memo.find_or_add m 1 (fun () -> 5))

let test_merge_first_wins () =
  let a = Memo.create () and b = Memo.create () in
  ignore (Memo.find_or_add a 1 (fun () -> "a1"));
  ignore (Memo.find_or_add a 2 (fun () -> "a2"));
  ignore (Memo.find_or_add b 2 (fun () -> "b2"));
  ignore (Memo.find_or_add b 3 (fun () -> "b3"));
  let hits_before = Memo.hits a and misses_before = Memo.misses a in
  Memo.merge ~into:a b;
  Alcotest.(check (option string)) "existing entry kept (first wins)" (Some "a2")
    (Memo.find_opt a 2);
  Alcotest.(check (option string)) "new entry copied" (Some "b3") (Memo.find_opt a 3);
  Alcotest.(check int) "into has the union" 3 (Memo.entries a);
  Alcotest.(check int) "src unchanged" 2 (Memo.entries b);
  Alcotest.(check (option string)) "src entry unchanged" (Some "b2") (Memo.find_opt b 2);
  Alcotest.(check int) "merge does not touch hit counters" hits_before (Memo.hits a);
  Alcotest.(check int) "merge does not touch miss counters" misses_before (Memo.misses a)

let test_clear () =
  let m = Memo.create () in
  ignore (Memo.find_or_add m 1 (fun () -> 1));
  ignore (Memo.find_or_add m 1 (fun () -> 1));
  Memo.clear m;
  Alcotest.(check int) "no entries" 0 (Memo.entries m);
  Alcotest.(check int) "hits reset" 0 (Memo.hits m);
  Alcotest.(check int) "misses reset" 0 (Memo.misses m)

(* Each domain sees its own context under the same key; an entry cached on
   one domain must not leak into another's default. *)
let test_dls_per_domain () =
  let key : (int, int) Memo.Dls.key = Memo.Dls.key () in
  let m = Memo.Dls.get key in
  Alcotest.(check bool) "get is stable on one domain" true (m == Memo.Dls.get key);
  ignore (Memo.find_or_add m 1 (fun () -> 100));
  let other_domain_saw =
    Domain.join
      (Domain.spawn (fun () ->
           let m' = Memo.Dls.get key in
           (Memo.mem m' 1, Memo.entries m')))
  in
  Alcotest.(check (pair bool int)) "sibling domain starts empty" (false, 0)
    other_domain_saw;
  Alcotest.(check bool) "entry still present on the owning domain" true (Memo.mem m 1);
  (* set replaces the calling domain's context only. *)
  let fresh = Memo.create () in
  Memo.Dls.set key fresh;
  Alcotest.(check bool) "set installs the new context" true (fresh == Memo.Dls.get key);
  Alcotest.(check int) "installed context is the fresh one" 0
    (Memo.entries (Memo.Dls.get key))

let test_shared_across_domains () =
  let s : (int, int) Memo.Shared.t = Memo.Shared.create () in
  Alcotest.(check (option int)) "find_opt on empty" None (Memo.Shared.find_opt s 0);
  let computes = Atomic.make 0 in
  let worker () =
    List.init 50 (fun i ->
        let k = i mod 5 in
        Memo.Shared.find_or_add s k (fun () ->
            Atomic.incr computes;
            k * k))
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  let results = worker () :: List.map Domain.join domains in
  List.iter
    (fun r ->
      Alcotest.(check (list int)) "every domain reads consistent values"
        (List.init 50 (fun i ->
             let k = i mod 5 in
             k * k))
        r)
    results;
  Alcotest.(check int) "exactly the distinct keys are stored" 5 (Memo.Shared.entries s);
  (* Racing cold keys may compute more than once (by design: compute runs
     outside the lock) but never fewer times than the distinct keys. *)
  Alcotest.(check bool) "compute ran at least once per key" true (Atomic.get computes >= 5);
  Alcotest.(check (option int)) "find_opt after warmup" (Some 9) (Memo.Shared.find_opt s 3)

(* Trigger.candidates must return identical results through any context,
   and a context must actually absorb the caching (no cross-context
   leakage). *)
let test_trigger_memo_isolation () =
  let rng = Ee_util.Prng.create 42 in
  let funcs = List.init 20 (fun _ -> Lut4.random rng) in
  let fresh = Trigger.Memo.create () in
  let baseline = List.map (fun f -> Trigger.candidates f) funcs in
  let via_ctx = List.map (fun f -> Trigger.candidates ~memo:fresh f) funcs in
  Alcotest.(check bool) "explicit context yields identical candidates" true
    (baseline = via_ctx);
  Alcotest.(check bool) "context holds at most one entry per distinct function" true
    (Trigger.Memo.entries fresh
    <= List.length (List.sort_uniq compare (List.map Lut4.to_int funcs)));
  Alcotest.(check bool) "context saw every lookup" true
    (Trigger.Memo.hits fresh + Trigger.Memo.misses fresh = List.length funcs);
  let isolated = Trigger.Memo.create () in
  Alcotest.(check int) "a sibling context shares nothing" 0
    (Trigger.Memo.entries isolated);
  (* Repeat lookups hit: no new misses on the warm pass. *)
  let misses_before = Trigger.Memo.misses fresh in
  let hits_before = Trigger.Memo.hits fresh in
  ignore (List.map (fun f -> Trigger.candidates ~memo:fresh f) funcs);
  Alcotest.(check int) "warm pass adds no misses" misses_before
    (Trigger.Memo.misses fresh);
  Alcotest.(check int) "warm pass is all hits" (hits_before + List.length funcs)
    (Trigger.Memo.hits fresh)

let test_trigger_memo_merge_accumulates () =
  let rng = Ee_util.Prng.create 7 in
  let funcs = List.init 12 (fun _ -> Lut4.random rng) in
  let shared = Trigger.Memo.create () in
  let w1 = Trigger.Memo.create () and w2 = Trigger.Memo.create () in
  List.iteri
    (fun i f -> ignore (Trigger.candidates ~memo:(if i mod 2 = 0 then w1 else w2) f))
    funcs;
  Trigger.Memo.merge ~into:shared w1;
  Trigger.Memo.merge ~into:shared w2;
  let distinct = List.length (List.sort_uniq compare (List.map Lut4.to_int funcs)) in
  Alcotest.(check int) "batch-end merges cover the whole batch" distinct
    (Trigger.Memo.entries shared);
  (* A warm-started worker reuses the merged entries. *)
  let w3 = Trigger.Memo.create () in
  Trigger.Memo.merge ~into:w3 shared;
  ignore (List.map (fun f -> Trigger.candidates ~memo:w3 f) funcs);
  Alcotest.(check int) "warm-started context recomputes nothing" 0
    (Trigger.Memo.misses w3)

(* The domain default used by bare [candidates f] is installable — the
   mechanism Engine.run_suite's worker_init hook relies on. *)
let test_trigger_install_domain_default () =
  let f = Trigger.full_adder_carry in
  let mine = Trigger.Memo.create () in
  Trigger.Memo.install_domain_default mine;
  Alcotest.(check bool) "install replaces the default" true
    (mine == Trigger.Memo.domain_default ());
  ignore (Trigger.candidates f);
  Alcotest.(check bool) "bare candidates populated the installed context" true
    (Trigger.Memo.entries mine > 0);
  (* A spawned domain gets its own default, not this one. *)
  let sibling_entries =
    Domain.join
      (Domain.spawn (fun () -> Trigger.Memo.entries (Trigger.Memo.domain_default ())))
  in
  Alcotest.(check int) "sibling domain default starts empty" 0 sibling_entries

let suite =
  ( "memo",
    [
      Alcotest.test_case "find_or_add caches and counts" `Quick test_find_or_add;
      Alcotest.test_case "raising compute stores nothing" `Quick test_raise_stores_nothing;
      Alcotest.test_case "merge is first-wins and one-way" `Quick test_merge_first_wins;
      Alcotest.test_case "clear resets entries and counters" `Quick test_clear;
      Alcotest.test_case "Dls contexts are per-domain" `Quick test_dls_per_domain;
      Alcotest.test_case "Shared context is domain-safe" `Quick test_shared_across_domains;
      Alcotest.test_case "trigger contexts isolate and agree" `Quick
        test_trigger_memo_isolation;
      Alcotest.test_case "trigger merge accumulates across workers" `Quick
        test_trigger_memo_merge_accumulates;
      Alcotest.test_case "installable domain default" `Quick
        test_trigger_install_domain_default;
    ] )
