module Mg = Ee_markedgraph.Marked_graph

(* Two nodes exchanging one token: the canonical live & safe 2-cycle. *)
let ping_pong = Mg.make ~nodes:2 ~arcs:[ (0, 1, 1); (1, 0, 0) ]

let test_ping_pong_live_safe () =
  Alcotest.(check bool) "live" true (Mg.is_live ping_pong);
  Alcotest.(check bool) "safe" true (Mg.is_safe ping_pong);
  Alcotest.(check bool) "check ok" true (Mg.check_live_safe ping_pong = Ok ())

let test_tokenless_cycle_not_live () =
  let g = Mg.make ~nodes:2 ~arcs:[ (0, 1, 0); (1, 0, 0) ] in
  Alcotest.(check bool) "zero-token cycle" false (Mg.is_live g);
  Alcotest.(check bool) "tokens_on_cycles" false (Mg.tokens_on_cycles_ok g)

let test_two_token_cycle_unsafe () =
  let g = Mg.make ~nodes:2 ~arcs:[ (0, 1, 1); (1, 0, 1) ] in
  Alcotest.(check bool) "live" true (Mg.is_live g);
  Alcotest.(check bool) "unsafe" false (Mg.is_safe g)

let test_arc_off_cycle () =
  let g = Mg.make ~nodes:3 ~arcs:[ (0, 1, 1); (1, 0, 0); (1, 2, 1) ] in
  Alcotest.(check bool) "arc to sink is on no cycle" false (Mg.all_arcs_on_cycles g);
  Alcotest.(check bool) "hence not live (paper's definition)" false (Mg.is_live g)

let test_min_cycle_tokens () =
  (* Triangle with a single token. *)
  let g = Mg.make ~nodes:3 ~arcs:[ (0, 1, 1); (1, 2, 0); (2, 0, 0) ] in
  Alcotest.(check (option int)) "arc 0" (Some 1) (Mg.min_cycle_tokens g 0);
  Alcotest.(check (option int)) "arc 1" (Some 1) (Mg.min_cycle_tokens g 1);
  Alcotest.(check bool) "live and safe" true (Mg.is_live g && Mg.is_safe g);
  (* Arc on no cycle. *)
  let h = Mg.make ~nodes:2 ~arcs:[ (0, 1, 1) ] in
  Alcotest.(check (option int)) "no cycle" None (Mg.min_cycle_tokens h 0)

let test_shortcut_chooses_min () =
  (* Two cycles through arc 0: one with 1 token, one with 2. *)
  let g =
    Mg.make ~nodes:3
      ~arcs:[ (0, 1, 0); (1, 0, 1); (1, 2, 1); (2, 0, 1) ]
  in
  Alcotest.(check (option int)) "min over cycles" (Some 1) (Mg.min_cycle_tokens g 0);
  (* The 2-token cycle through arcs 2-3 makes those arcs unsafe. *)
  Alcotest.(check bool) "unsafe" false (Mg.is_safe g)

let test_error_message () =
  let g = Mg.make ~nodes:2 ~arcs:[ (0, 1, 1); (1, 0, 1) ] in
  match Mg.check_live_safe g with
  | Error msg -> Alcotest.(check bool) "mentions safety" true (Astring_contains.contains msg "safety")
  | Ok () -> Alcotest.fail "expected safety violation"

let test_make_validation () =
  (match Mg.make ~nodes:1 ~arcs:[ (0, 5, 0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected range error");
  match Mg.make ~nodes:1 ~arcs:[ (0, 0, -1) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected token error"

let test_token_game_ping_pong () =
  let m = Mg.initial_marking ping_pong in
  Alcotest.(check bool) "node 1 enabled" true (Mg.enabled ping_pong m 1);
  Alcotest.(check bool) "node 0 not enabled" false (Mg.enabled ping_pong m 0);
  Mg.fire ping_pong m 1;
  Alcotest.(check int) "token moved" 1 (Mg.tokens m 1);
  Alcotest.(check int) "consumed" 0 (Mg.tokens m 0);
  Alcotest.(check bool) "now node 0 enabled" true (Mg.enabled ping_pong m 0);
  Alcotest.check_raises "firing disabled node"
    (Invalid_argument "Marked_graph.fire: node not enabled") (fun () -> Mg.fire ping_pong m 1)

let test_token_game_random () =
  let rng = Ee_util.Prng.create 31 in
  match Mg.run_token_game ping_pong ~steps:1000 ~rng with
  | `Ok counts ->
      (* In a 2-node cycle, firing counts differ by at most one. *)
      Alcotest.(check bool) "balanced firing" true (abs (counts.(0) - counts.(1)) <= 1);
      Alcotest.(check int) "total fires" 1000 (counts.(0) + counts.(1))
  | `Unsafe _ -> Alcotest.fail "safe graph reported unsafe"
  | `Dead _ -> Alcotest.fail "live graph reported dead"

let test_token_game_detects_unsafe () =
  (* Node 0 fires freely into arc (0,1); node 1 needs both arcs, the second
     of which never fills — tokens pile up on the first. *)
  let g = Mg.make ~nodes:3 ~arcs:[ (0, 0, 1); (0, 1, 0); (2, 1, 0); (1, 2, 1) ] in
  let rng = Ee_util.Prng.create 7 in
  (match Mg.run_token_game g ~steps:1000 ~rng with
  | `Unsafe (_, m) ->
      (* The carried marking shows the pile-up. *)
      Alcotest.(check bool) "marking has a >1 arc" true
        (Array.exists (fun k -> k > 1) (Mg.marking_array m))
  | `Ok _ -> Alcotest.fail "expected unsafe"
  | `Dead _ -> Alcotest.fail "expected unsafe, got dead")

let test_token_game_on_pl_netlist () =
  (* The b03 arbiter's PL marked graph: random firing for thousands of steps
     never exceeds one token per arc and never deadlocks (live + safe,
     dynamically witnessed). *)
  let b = Ee_bench_circuits.Itc99.find "b03" in
  let nl = Ee_rtl.Techmap.run_rtl (b.Ee_bench_circuits.Itc99.build ()) in
  let pl = Ee_phased.Pl.of_netlist nl in
  let g = Ee_phased.Pl.to_marked_graph pl in
  let rng = Ee_util.Prng.create 11 in
  match Mg.run_token_game g ~steps:5000 ~rng with
  | `Ok counts ->
      Alcotest.(check bool) "every node fired" true (Array.for_all (fun c -> c > 0) counts)
  | `Unsafe (a, _) -> Alcotest.failf "unsafe at arc %d" a
  | `Dead _ -> Alcotest.fail "deadlock"

let suite =
  ( "marked-graph",
    [
      Alcotest.test_case "ping-pong live+safe" `Quick test_ping_pong_live_safe;
      Alcotest.test_case "tokenless cycle not live" `Quick test_tokenless_cycle_not_live;
      Alcotest.test_case "two-token cycle unsafe" `Quick test_two_token_cycle_unsafe;
      Alcotest.test_case "arc off cycle" `Quick test_arc_off_cycle;
      Alcotest.test_case "min_cycle_tokens" `Quick test_min_cycle_tokens;
      Alcotest.test_case "min over multiple cycles" `Quick test_shortcut_chooses_min;
      Alcotest.test_case "error message" `Quick test_error_message;
      Alcotest.test_case "make validation" `Quick test_make_validation;
      Alcotest.test_case "token game ping-pong" `Quick test_token_game_ping_pong;
      Alcotest.test_case "token game random" `Quick test_token_game_random;
      Alcotest.test_case "token game detects unsafe" `Quick test_token_game_detects_unsafe;
      Alcotest.test_case "token game on PL netlist" `Quick test_token_game_on_pl_netlist;
    ] )
