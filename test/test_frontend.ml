(* The arbitrary-netlist frontend: BLIF dialect coverage, AIGER golden
   files and round-trips, the remapper's equivalence guarantee, the
   corpus generator, and the wire format of the serve [import] command. *)

module Frontend = Ee_frontend.Frontend
module Aiger = Ee_frontend.Aiger
module Corpus = Ee_frontend.Corpus
module Remap = Ee_frontend.Remap
module Netlist = Ee_netlist.Netlist
module Equiv = Ee_netlist.Equiv
module Blif = Ee_export.Blif
module Base64 = Ee_util.Base64
module Prng = Ee_util.Prng
module Json = Ee_export.Json
module Protocol = Ee_serve.Protocol

let verdict_string = function
  | Equiv.Equivalent -> "equivalent"
  | Equiv.Output_mismatch o -> "output mismatch on " ^ o
  | Equiv.Register_mismatch -> "register mismatch"
  | Equiv.Port_mismatch p -> "port mismatch on " ^ p

let check_equiv name a b =
  match Equiv.check a b with
  | Equiv.Equivalent -> ()
  | v -> Alcotest.failf "%s: %s" name (verdict_string v)

(* Evaluate a combinational netlist on one input vector, values given by
   port name so reordering across parse/remap does not matter. *)
let eval nl values =
  let vec =
    Array.map (fun (n, _) -> List.assoc n values) (Netlist.inputs nl)
  in
  let outs, _ = Netlist.step nl (Netlist.initial_state nl) vec in
  Array.to_list
    (Array.mapi (fun k (n, _) -> (n, outs.(k))) (Netlist.outputs nl))

(* ------------------------------------------------------------------ *)
(* Format detection                                                   *)
(* ------------------------------------------------------------------ *)

let test_detect () =
  Alcotest.(check bool) "aag" true (Frontend.detect "aag 1 0 1 1 0\n" = Frontend.Aiger_ascii);
  Alcotest.(check bool) "aig" true (Frontend.detect "aig 0 0 0 0 0\n" = Frontend.Aiger_binary);
  Alcotest.(check bool) "blif" true (Frontend.detect ".model m\n" = Frontend.Blif);
  Alcotest.(check bool) "of_string blif" true (Frontend.format_of_string "blif" = Some Frontend.Blif);
  Alcotest.(check bool) "of_string aiger alias" true
    (Frontend.format_of_string "aiger" = Some Frontend.Aiger_ascii);
  Alcotest.(check bool) "of_string junk" true (Frontend.format_of_string "verilog" = None);
  List.iter
    (fun f ->
      Alcotest.(check bool) "to/of round-trip" true
        (Frontend.format_of_string (Frontend.format_to_string f) = Some f))
    [ Frontend.Blif; Frontend.Aiger_ascii; Frontend.Aiger_binary ];
  (* An explicit AIGER format must match the payload's magic. *)
  match Frontend.parse ~format:Frontend.Aiger_binary "aag 0 0 0 0 0\n" with
  | Ok _ -> Alcotest.fail "aag payload accepted as binary AIGER"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* BLIF dialect: continuations, constant covers, wide names, subckt   *)
(* ------------------------------------------------------------------ *)

let test_blif_continuation_and_const () =
  let text =
    ".model m\n\
     .inputs a b c \\\n\
     \ d e f\n\
     .outputs y k1 k0\n\
     .names a b c \\\n\
     \ d e f y\n\
     111--- 1\n\
     ---111 1\n\
     .names k1\n\
     1\n\
     .names k0\n\
     .end\n"
  in
  let nl = Frontend.parse_exn text in
  let base = [ ("a", false); ("b", false); ("c", false); ("d", false); ("e", false); ("f", false) ] in
  let with_ ons = List.map (fun (n, _) -> (n, List.mem n ons)) base in
  let out vals n = List.assoc n (eval nl vals) in
  Alcotest.(check bool) "abc cube" true (out (with_ [ "a"; "b"; "c" ]) "y");
  Alcotest.(check bool) "def cube" true (out (with_ [ "d"; "e"; "f" ]) "y");
  Alcotest.(check bool) "off-set" false (out (with_ [ "a"; "b"; "d" ]) "y");
  Alcotest.(check bool) "const 1 cover" true (out base "k1");
  Alcotest.(check bool) "empty cover is const 0" false (out base "k0")

let test_wide_names_semantics () =
  (* An 8-input cover must decompose into LUT4s that compute the same
     function; check against a direct evaluation of the cubes. *)
  let text =
    ".model wide\n\
     .inputs x0 x1 x2 x3 x4 x5 x6 x7\n\
     .outputs y\n\
     .names x0 x1 x2 x3 x4 x5 x6 x7 y\n\
     11------ 1\n\
     --11---- 1\n\
     ----1111 1\n\
     .end\n"
  in
  let nl = Frontend.parse_exn text in
  List.iter
    (fun i ->
      let fanin =
        match Netlist.node nl i with
        | Netlist.Lut { fanin; _ } -> Array.length fanin
        | _ -> 0
      in
      Alcotest.(check bool) "lut4 arity" true (fanin <= 4))
    (Netlist.lut_ids nl);
  let rng = Prng.create 41 in
  for _ = 1 to 64 do
    let v = Array.init 8 (fun _ -> Prng.bool rng) in
    let expect = (v.(0) && v.(1)) || (v.(2) && v.(3)) || (v.(4) && v.(5) && v.(6) && v.(7)) in
    let vals = List.init 8 (fun k -> (Printf.sprintf "x%d" k, v.(k))) in
    Alcotest.(check bool) "wide cover value" expect (List.assoc "y" (eval nl vals))
  done

let test_subckt_flatten () =
  let text =
    ".model top\n\
     .inputs a b c\n\
     .outputs y\n\
     .subckt and2 p=a q=b r=t\n\
     .subckt and2 p=t q=c r=y\n\
     .end\n\
     .model and2\n\
     .inputs p q\n\
     .outputs r\n\
     .names p q r\n\
     11 1\n\
     .end\n"
  in
  let nl = Frontend.parse_exn ~top:"top" text in
  for m = 0 to 7 do
    let bit k = m land (1 lsl k) <> 0 in
    let vals = [ ("a", bit 0); ("b", bit 1); ("c", bit 2) ] in
    Alcotest.(check bool)
      (Printf.sprintf "and3 %d" m)
      (bit 0 && bit 1 && bit 2)
      (List.assoc "y" (eval nl vals))
  done

(* ------------------------------------------------------------------ *)
(* AIGER golden files                                                 *)
(* ------------------------------------------------------------------ *)

let test_aiger_golden_ascii () =
  (* One latch feeding back its own negation: a toggle starting at 0.
     Outputs expose both polarities; symbols name all three ports. *)
  let text = "aag 1 0 1 2 0\n2 3\n2\n3\nl0 q\no0 q_now\no1 q_bar\n" in
  let nl = Frontend.parse_exn text in
  Alcotest.(check int) "dffs" 1 (Netlist.dff_count nl);
  Alcotest.(check int) "inputs" 0 (Array.length (Netlist.inputs nl));
  let names = Array.to_list (Array.map fst (Netlist.outputs nl)) in
  Alcotest.(check (list string)) "output symbols" [ "q_now"; "q_bar" ] names;
  let st = ref (Netlist.initial_state nl) in
  let expect = [ (false, true); (true, false); (false, true); (true, false) ] in
  List.iter
    (fun (q, qb) ->
      let outs, st' = Netlist.step nl !st [||] in
      st := st';
      Alcotest.(check bool) "q" q outs.(0);
      Alcotest.(check bool) "~q" qb outs.(1))
    expect

let test_aiger_golden_binary () =
  (* aig 3 2 0 1 1: two implicit inputs (literals 2 and 4), one AND with
     lhs 6 = 4 AND 2, deltas (6-4, 4-2) = (2, 2), output literal 6. *)
  let text = "aig 3 2 0 1 1\n6\n\x02\x02i0 a\ni1 b\no0 y\n" in
  let nl = Frontend.parse_exn text in
  Alcotest.(check int) "luts" 1 (Netlist.lut_count nl);
  for m = 0 to 3 do
    let vals = [ ("a", m land 1 <> 0); ("b", m land 2 <> 0) ] in
    Alcotest.(check bool)
      (Printf.sprintf "and %d" m)
      (m = 3)
      (List.assoc "y" (eval nl vals))
  done

let test_aiger_rejects () =
  List.iter
    (fun text ->
      match Frontend.parse text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error _ -> ())
    [
      "aag 1 1 0 1\n2\n2\n" (* short header *);
      "aag 0 0 0 0 0 1\n2\n" (* bad-state section *);
      "aag 1 1 0 1 0\n2\n5\n" (* literal out of range *);
      "aag 2 1 0 1 1\n2\n4\n4 4 6\n" (* cyclic / forward AND *);
      "aig 1 2 0 0 0\n" (* M < I + L + A *);
    ]

(* ------------------------------------------------------------------ *)
(* Round-trip properties                                              *)
(* ------------------------------------------------------------------ *)

let test_aiger_roundtrip () =
  for seed = 0 to 7 do
    let rng = Prng.create (100 + seed) in
    let nl = Corpus.random_netlist rng ~inputs:5 ~luts:18 ~dffs:(seed mod 3) in
    let back_a = Frontend.parse_exn (Aiger.to_ascii nl) in
    check_equiv (Printf.sprintf "ascii seed %d" seed) nl back_a;
    let back_b = Frontend.parse_exn (Aiger.to_binary nl) in
    check_equiv (Printf.sprintf "binary seed %d" seed) nl back_b;
    (* The two writers agree on names: ports survive the symbol table. *)
    let names nl = List.sort compare (Array.to_list (Array.map fst (Netlist.inputs nl))) in
    Alcotest.(check (list string)) "input names" (names nl) (names back_b)
  done

let test_remap_equivalence () =
  for seed = 0 to 5 do
    let rng = Prng.create (200 + seed) in
    let nl = Corpus.random_netlist rng ~inputs:6 ~luts:24 ~dffs:2 in
    let mapped = Remap.run nl in
    check_equiv (Printf.sprintf "remap seed %d" seed) nl mapped;
    Alcotest.(check bool) "remap does not add state" true
      (Netlist.dff_count mapped = Netlist.dff_count nl)
  done

(* ------------------------------------------------------------------ *)
(* Corpus generator                                                   *)
(* ------------------------------------------------------------------ *)

let test_corpus_all_pass () =
  let entries = Corpus.generate ~seed:2002 ~n:30 in
  Alcotest.(check int) "entry count" 30 (List.length entries);
  List.iter
    (fun (e : Corpus.entry) ->
      match Corpus.check e with
      | Corpus.Passed _ -> ()
      | o -> Alcotest.failf "%s: %s" e.Corpus.e_name (Corpus.outcome_class o))
    entries;
  (* All five flavors are present in a 30-entry slice. *)
  List.iter
    (fun flavor ->
      Alcotest.(check bool) (flavor ^ " present") true
        (List.exists
           (fun (e : Corpus.entry) ->
             Astring_contains.contains e.Corpus.e_name flavor)
           entries))
    [ "blif"; "aag"; "aig"; "wide"; "subckt" ]

let test_corpus_deterministic () =
  let a = Corpus.generate ~seed:5 ~n:10 and b = Corpus.generate ~seed:5 ~n:10 in
  List.iter2
    (fun (x : Corpus.entry) (y : Corpus.entry) ->
      Alcotest.(check string) "name" x.Corpus.e_name y.Corpus.e_name;
      Alcotest.(check string) "text" x.Corpus.e_text y.Corpus.e_text)
    a b

(* ------------------------------------------------------------------ *)
(* Delay-driven mapping                                               *)
(* ------------------------------------------------------------------ *)

let test_delay_mapper_itc99 () =
  List.iter
    (fun id ->
      let d = (Ee_bench_circuits.Itc99.find id).Ee_bench_circuits.Itc99.build () in
      let tm = Ee_rtl.Techmap.run_rtl d in
      let dm = Ee_rtl.Cutmap.run_rtl ~mode:Ee_rtl.Cutmap.Delay d in
      Alcotest.(check bool)
        (Printf.sprintf "%s depth %d <= techmap %d" id (Netlist.depth dm) (Netlist.depth tm))
        true
        (Netlist.depth dm <= Netlist.depth tm);
      check_equiv id tm dm)
    [ "b01"; "b02"; "b03"; "b06" ]

(* ------------------------------------------------------------------ *)
(* Base64 and name escaping (transport plumbing)                      *)
(* ------------------------------------------------------------------ *)

let test_base64 () =
  (* RFC 4648 vectors. *)
  List.iter
    (fun (plain, enc) ->
      Alcotest.(check string) ("encode " ^ plain) enc (Base64.encode plain);
      match Base64.decode enc with
      | Ok p -> Alcotest.(check string) ("decode " ^ enc) plain p
      | Error m -> Alcotest.failf "decode %s: %s" enc m)
    [ ("", ""); ("f", "Zg=="); ("fo", "Zm8="); ("foo", "Zm9v"); ("foob", "Zm9vYg==") ];
  (* Every byte value survives. *)
  let all = String.init 256 Char.chr in
  (match Base64.decode (Base64.encode all) with
  | Ok s -> Alcotest.(check string) "all bytes" all s
  | Error m -> Alcotest.fail m);
  (* Whitespace inside is tolerated; malformed input is not. *)
  (match Base64.decode "Zm9v\nYg==" with
  | Ok s -> Alcotest.(check string) "whitespace skipped" "foob" s
  | Error m -> Alcotest.fail m);
  List.iter
    (fun bad ->
      match Base64.decode bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ "Zg="; "Z!g="; "=Zg="; "Zg==Zg==" ]

let test_name_escaping () =
  List.iter
    (fun name ->
      let esc = Blif.escape_name name in
      Alcotest.(check bool) "no raw space" false (String.contains esc ' ');
      Alcotest.(check string) "round-trip" name (Blif.unescape_name esc))
    [ "plain"; "with space"; "back\\slash"; "hash#eq=dash-"; "sig[3]" ];
  (* And end to end: a netlist with hostile port names survives
     to_blif -> parse with names intact. *)
  let b = Netlist.builder () in
  let a = Netlist.add_input b "in put" in
  let l = Netlist.add_lut b (Ee_logic.Lut4.of_truthtab (Ee_logic.Truthtab.var 1 0)) [| a |] in
  Netlist.set_output b "out#1" l;
  let nl = Netlist.finalize b in
  let nl' = Frontend.parse_exn (Blif.to_blif nl) in
  Alcotest.(check (list string)) "input names"
    [ "in put" ]
    (Array.to_list (Array.map fst (Netlist.inputs nl')));
  Alcotest.(check (list string)) "output names"
    [ "out#1" ]
    (Array.to_list (Array.map fst (Netlist.outputs nl')))

(* ------------------------------------------------------------------ *)
(* Serve protocol: the import command's wire format                   *)
(* ------------------------------------------------------------------ *)

let test_protocol_import () =
  (* Decode: base64 payload, explicit format, remap off. *)
  let line =
    Printf.sprintf
      "{\"cmd\":\"import\",\"text\":%s,\"encoding\":\"base64\",\"format\":\"aig\",\"remap\":false}"
      (Json.to_string (Json.String (Base64.encode "aig 0 0 0 0 0\n")))
  in
  (match Protocol.parse_line line with
  | Ok { Protocol.req = Protocol.Import { text; format; remap; _ }; _ } ->
      Alcotest.(check string) "decoded text" "aig 0 0 0 0 0\n" text;
      Alcotest.(check bool) "format" true (format = Some Frontend.Aiger_binary);
      Alcotest.(check bool) "remap" false remap
  | Ok _ -> Alcotest.fail "wrong request"
  | Error m -> Alcotest.fail m);
  (* Encode: a binary payload rides base64 and survives a round trip. *)
  let rng = Prng.create 77 in
  let nl = Corpus.random_netlist rng ~inputs:4 ~luts:10 ~dffs:1 in
  let binary = Aiger.to_binary nl in
  let env =
    {
      Protocol.id = Json.Null;
      deadline_s = None;
      req =
        Protocol.Import
          { text = binary; format = None; remap = true; spec = Ee_engine.Engine.default_spec };
    }
  in
  let encoded = Json.to_string (Protocol.envelope_to_json env) in
  Alcotest.(check bool) "base64 marker" true
    (Astring_contains.contains encoded "\"encoding\":\"base64\"");
  match Protocol.parse_line encoded with
  | Ok { Protocol.req = Protocol.Import { text; _ }; _ } ->
      Alcotest.(check string) "payload intact" binary text
  | Ok _ -> Alcotest.fail "wrong request"
  | Error m -> Alcotest.fail m

let suite =
  ( "frontend",
    [
      Alcotest.test_case "format detection" `Quick test_detect;
      Alcotest.test_case "blif continuations and const covers" `Quick test_blif_continuation_and_const;
      Alcotest.test_case "wide names decomposition" `Quick test_wide_names_semantics;
      Alcotest.test_case "subckt flattening" `Quick test_subckt_flatten;
      Alcotest.test_case "aiger golden ascii" `Quick test_aiger_golden_ascii;
      Alcotest.test_case "aiger golden binary" `Quick test_aiger_golden_binary;
      Alcotest.test_case "aiger rejects malformed input" `Quick test_aiger_rejects;
      Alcotest.test_case "aiger round-trips" `Quick test_aiger_roundtrip;
      Alcotest.test_case "remap equivalence" `Quick test_remap_equivalence;
      Alcotest.test_case "corpus entries all pass" `Quick test_corpus_all_pass;
      Alcotest.test_case "corpus is deterministic" `Quick test_corpus_deterministic;
      Alcotest.test_case "delay mapper vs techmap" `Quick test_delay_mapper_itc99;
      Alcotest.test_case "base64" `Quick test_base64;
      Alcotest.test_case "name escaping" `Quick test_name_escaping;
      Alcotest.test_case "protocol import wire format" `Quick test_protocol_import;
    ] )
