module Rail_sim = Ee_phased.Rail_sim
module Pl = Ee_phased.Pl
module Netlist = Ee_netlist.Netlist
module Lut4 = Ee_logic.Lut4

let build id =
  let b = Ee_bench_circuits.Itc99.find id in
  let nl = Ee_rtl.Techmap.run_rtl (b.Ee_bench_circuits.Itc99.build ()) in
  let pl = Pl.of_netlist nl in
  let pl_ee, _ = Ee_core.Synth.run pl in
  (nl, pl, pl_ee)

let test_matches_golden () =
  List.iter
    (fun id ->
      let nl, pl, pl_ee = build id in
      Alcotest.(check bool) (id ^ " plain") true (Rail_sim.run_check pl nl ~vectors:80 ~seed:3);
      Alcotest.(check bool) (id ^ " ee") true (Rail_sim.run_check pl_ee nl ~vectors:80 ~seed:3))
    [ "b02"; "b05"; "b10"; "b13" ]

let test_early_fires_observed () =
  let _, _, pl_ee = build "b09" in
  let t = Rail_sim.create pl_ee in
  let rng = Ee_util.Prng.create 7 in
  let width = Array.length (Pl.source_ids pl_ee) in
  let total = ref 0 in
  for _ = 1 to 40 do
    let _, e = Rail_sim.apply t (Ee_util.Prng.bool_vector rng width) in
    total := !total + e
  done;
  Alcotest.(check bool) "masters fire off stale rails" true (!total > 0)

let test_no_early_without_ee () =
  let _, pl, _ = build "b09" in
  let t = Rail_sim.create pl in
  let rng = Ee_util.Prng.create 7 in
  let width = Array.length (Pl.source_ids pl) in
  for _ = 1 to 20 do
    let _, e = Rail_sim.apply t (Ee_util.Prng.bool_vector rng width) in
    Alcotest.(check int) "no triggers, no early fires" 0 e
  done

let test_reset () =
  let nl, _, pl_ee = build "b12" in
  let t = Rail_sim.create pl_ee in
  let rng = Ee_util.Prng.create 4 in
  let width = Array.length (Pl.source_ids pl_ee) in
  let first_wave_vec = Ee_util.Prng.bool_vector (Ee_util.Prng.create 99) width in
  let first, _ = Rail_sim.apply t first_wave_vec in
  for _ = 1 to 10 do
    ignore (Rail_sim.apply t (Ee_util.Prng.bool_vector rng width))
  done;
  Rail_sim.reset t;
  let again, _ = Rail_sim.apply t first_wave_vec in
  Alcotest.(check bool) "reset reproduces wave 1" true (first = again);
  ignore nl

let test_phase_alternation_across_waves () =
  (* Feeding constant inputs still works: every wave flips the token phase
     (same value, different rails), which the protocol checks internally. *)
  let nl, pl, _ = build "b06" in
  let t = Rail_sim.create pl in
  let st = ref (Netlist.initial_state nl) in
  for _ = 1 to 12 do
    let vec = [| true; true |] in
    let outs, _ = Rail_sim.apply t vec in
    let expected, st' = Netlist.step nl !st vec in
    st := st';
    Alcotest.(check bool) "constant-input wave" true (outs = expected)
  done

let test_single_gate_protocol () =
  (* One AND gate: watch the rails flip one wire at a time. *)
  let b = Netlist.builder () in
  let x = Netlist.add_input b "x" in
  let y = Netlist.add_input b "y" in
  let g = Netlist.add_lut b (Lut4.logand (Lut4.var 0) (Lut4.var 1)) [| x; y |] in
  Netlist.set_output b "z" g;
  let pl = Pl.of_netlist (Netlist.finalize b) in
  let t = Rail_sim.create pl in
  List.iter
    (fun (vx, vy) ->
      let outs, _ = Rail_sim.apply t [| vx; vy |] in
      Alcotest.(check bool) "and" (vx && vy) outs.(0))
    [ (true, true); (true, true); (false, true); (true, false); (false, false) ]

(* Every gate's output pair starts at {v=0,t=0}, so driving {v=1,t=1} on
   the first wave changes both wires of the pair at once — the one LEDR
   transition that can never be legal, and the simulator must say so. *)
let test_double_rail_fault_detected () =
  let _, pl, _ = build "b06" in
  let gates = Pl.gates pl in
  let target =
    let rec find i =
      match gates.(i).Pl.kind with Pl.Gate _ -> i | _ -> find (i + 1)
    in
    find 0
  in
  let hooks =
    {
      Rail_sim.no_hooks with
      Rail_sim.on_latch =
        (fun ~wave ~gate r ->
          if gate = target && wave = 0 then { Ee_phased.Ledr.v = true; t = true } else r);
    }
  in
  let t = Rail_sim.create ~hooks pl in
  let rng = Ee_util.Prng.create 6 in
  let width = Array.length (Pl.source_ids pl) in
  match Rail_sim.apply t (Ee_util.Prng.bool_vector rng width) with
  | _ -> Alcotest.fail "double-rail fault went unnoticed"
  | exception Rail_sim.Protocol_violation msg ->
      let contains hay needle =
        let n = String.length needle in
        let rec go i =
          i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "violation names both rails" true (contains msg "both rails")

let test_token_loss_stall_forensics () =
  let _, pl, _ = build "b06" in
  let gates = Pl.gates pl in
  let target =
    let has_comb_consumer i =
      Array.exists
        (fun g ->
          match g.Pl.kind with
          | Pl.Gate _ | Pl.Trigger _ | Pl.Register _ -> Array.mem i g.Pl.fanin
          | _ -> false)
        gates
    in
    let rec find i =
      match gates.(i).Pl.kind with
      | Pl.Gate _ when has_comb_consumer i -> i
      | _ -> find (i + 1)
    in
    find 0
  in
  let hooks =
    { Rail_sim.no_hooks with Rail_sim.drop_fire = (fun ~wave ~gate -> gate = target && wave = 1) }
  in
  let t = Rail_sim.create ~hooks pl in
  let rng = Ee_util.Prng.create 6 in
  let width = Array.length (Pl.source_ids pl) in
  let rec run wave =
    if wave >= 4 then Alcotest.fail "dropped firing did not stall the wave"
    else
      match Rail_sim.apply t (Ee_util.Prng.bool_vector rng width) with
      | _ -> run (wave + 1)
      | exception Rail_sim.Stalled s ->
          Alcotest.(check int) "stalls in the faulted wave" 1 s.Rail_sim.stall_wave;
          Alcotest.(check bool) "dropped gate among the unfired" true
            (List.mem target s.Rail_sim.unfired);
          Alcotest.(check bool) "dropped gate is a root cause" true
            (List.mem target s.Rail_sim.roots);
          Alcotest.(check bool) "report renders" true
            (String.length (Rail_sim.stall_to_string s) > 0)
  in
  run 0

(* Per-gate round delays reorder firings but can never change the values:
   delay-insensitivity, executed. *)
let test_delay_schedule_invariance () =
  let nl, _, pl_ee = build "b09" in
  let n = Array.length (Pl.gates pl_ee) in
  let width = Array.length (Pl.source_ids pl_ee) in
  List.iter
    (fun mk ->
      let t = Rail_sim.create ~delays:(Array.init n mk) pl_ee in
      let st = ref (Netlist.initial_state nl) in
      let rng = Ee_util.Prng.create 21 in
      for _ = 1 to 25 do
        let vec = Ee_util.Prng.bool_vector rng width in
        let outs, _ = Rail_sim.apply t vec in
        let expected, st' = Netlist.step nl !st vec in
        st := st';
        Alcotest.(check bool) "outputs independent of the schedule" true (outs = expected)
      done)
    [ (fun _ -> 0); (fun _ -> 3); (fun i -> i mod 5); (fun i -> (i * 7) mod 11) ]

let test_delay_validation () =
  let _, pl, _ = build "b02" in
  (match Rail_sim.create ~delays:[| 1 |] pl with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected length validation");
  let n = Array.length (Pl.gates pl) in
  match Rail_sim.create ~delays:(Array.make n (-1)) pl with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected negative-delay validation"

let suite =
  ( "rail-sim",
    [
      Alcotest.test_case "matches golden model" `Quick test_matches_golden;
      Alcotest.test_case "early fires observed" `Quick test_early_fires_observed;
      Alcotest.test_case "no early without EE" `Quick test_no_early_without_ee;
      Alcotest.test_case "reset" `Quick test_reset;
      Alcotest.test_case "phase alternation" `Quick test_phase_alternation_across_waves;
      Alcotest.test_case "single gate protocol" `Quick test_single_gate_protocol;
      Alcotest.test_case "double-rail fault detected" `Quick test_double_rail_fault_detected;
      Alcotest.test_case "token-loss stall forensics" `Quick test_token_loss_stall_forensics;
      Alcotest.test_case "delay-schedule invariance" `Quick test_delay_schedule_invariance;
      Alcotest.test_case "delay validation" `Quick test_delay_validation;
    ] )
