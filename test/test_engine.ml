(* The parallel engine: pool semantics, sequential/parallel result
   identity, and trace output. *)

module Pool = Ee_util.Pool
module Engine = Ee_engine.Engine
module Trace = Ee_engine.Trace

exception Boom of int

let count_substring hay needle =
  let n = String.length needle in
  let rec go from acc =
    if from + n > String.length hay then acc
    else if String.sub hay from n = needle then go (from + 1) (acc + 1)
    else go (from + 1) acc
  in
  go 0 0

let test_pool_map_order () =
  List.iter
    (fun domains ->
      let xs = List.init 40 Fun.id in
      let ys = Pool.run ~domains (fun x -> x * x) xs in
      Alcotest.(check (list int))
        (Printf.sprintf "map order, %d domains" domains)
        (List.map (fun x -> x * x) xs)
        ys)
    [ 1; 3; 4 ]

let test_pool_exception () =
  List.iter
    (fun domains ->
      Alcotest.check_raises
        (Printf.sprintf "exception propagates, %d domains" domains)
        (Boom 7)
        (fun () -> ignore (Pool.run ~domains (fun x -> if x = 7 then raise (Boom x) else x) [ 1; 7 ]));
      (* The pool survives a failing task: later submissions still work. *)
      Pool.with_pool ~domains (fun p ->
          let bad = Pool.submit p (fun () -> raise (Boom 1)) in
          let good = Pool.submit p (fun () -> 42) in
          Alcotest.(check int) "task after failure" 42 (Pool.await good);
          match Pool.await bad with
          | _ -> Alcotest.fail "expected Boom"
          | exception Boom 1 -> ()))
    [ 1; 4 ]

let test_pool_map_chunked_order () =
  let xs = List.init 53 Fun.id in
  let expect = List.map (fun x -> x * 3) xs in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          (* Default chunk plus explicit sizes that do and don't divide the
             length, including degenerate (1) and oversized (> length). *)
          List.iter
            (fun chunk ->
              let got = Pool.map_chunked ?chunk p (fun x -> x * 3) xs in
              Alcotest.(check (list int))
                (Printf.sprintf "chunked map order, %d domains, chunk %s" domains
                   (match chunk with None -> "default" | Some c -> string_of_int c))
                expect got)
            [ None; Some 1; Some 7; Some 53; Some 1000 ]))
    [ 1; 4 ]

let test_pool_map_chunked_empty_and_bad_chunk () =
  Pool.with_pool ~domains:2 (fun p ->
      Alcotest.(check (list int)) "empty input" [] (Pool.map_chunked p Fun.id []);
      List.iter
        (fun c ->
          match Pool.map_chunked ~chunk:c p Fun.id [ 1 ] with
          | _ -> Alcotest.failf "chunk = %d should raise" c
          | exception Invalid_argument _ -> ())
        [ 0; -1 ])

let test_pool_map_chunked_exception () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          (* The earliest failing slice's exception surfaces; elements after
             the raising one in the same slice are never evaluated. *)
          let touched = Array.make 12 false in
          let f x =
            touched.(x) <- true;
            if x = 4 then raise (Boom 4);
            x
          in
          (match Pool.map_chunked ~chunk:6 p f (List.init 12 Fun.id) with
          | _ -> Alcotest.fail "expected Boom 4"
          | exception Boom 4 -> ());
          Alcotest.(check bool) "element before the raise ran" true touched.(3);
          Alcotest.(check bool) "element after the raise, same slice, skipped" false
            touched.(5);
          (* The pool survives: a later chunked map still works. *)
          Alcotest.(check (list int)) "pool usable after a failing slice" [ 2; 4 ]
            (Pool.map_chunked p (fun x -> 2 * x) [ 1; 2 ])))
    [ 1; 4 ]

let test_pool_worker_hooks () =
  List.iter
    (fun domains ->
      let inits = Atomic.make 0 and teardowns = Atomic.make 0 in
      let indices = Array.make 64 0 in
      let p =
        Pool.create ~domains
          ~worker_init:(fun i ->
            Atomic.incr inits;
            indices.(i) <- indices.(i) + 1)
          ~worker_teardown:(fun _ -> Atomic.incr teardowns)
          ()
      in
      let n = Pool.size p in
      ignore (Pool.map_chunked p (fun x -> x + 1) (List.init 20 Fun.id));
      Pool.shutdown p;
      Alcotest.(check int)
        (Printf.sprintf "init once per worker (%d domains)" domains)
        n (Atomic.get inits);
      Alcotest.(check int)
        (Printf.sprintf "teardown once per worker (%d domains)" domains)
        n (Atomic.get teardowns);
      for i = 0 to n - 1 do
        Alcotest.(check int) "each worker index hooked exactly once" 1 indices.(i)
      done;
      Pool.shutdown p;
      Alcotest.(check int) "idempotent shutdown does not re-run teardown" n
        (Atomic.get teardowns))
    [ 1; 3 ]

(* Domain-local state installed by worker_init must be visible to the
   tasks that worker runs — the contract Engine.run_suite's per-worker
   memo contexts depend on. *)
let test_pool_worker_init_domain_state () =
  let key = Domain.DLS.new_key (fun () -> "unset") in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains
        ~worker_init:(fun i -> Domain.DLS.set key (Printf.sprintf "worker-%d" i))
        (fun p ->
          let seen = Pool.map_chunked p (fun _ -> Domain.DLS.get key) (List.init 8 Fun.id) in
          Alcotest.(check bool)
            (Printf.sprintf "every task saw an installed context (%d domains)" domains)
            true
            (List.for_all (fun s -> s <> "unset") seen)))
    [ 1; 4 ]

let test_pool_submit_after_shutdown () =
  let p = Pool.create ~domains:2 () in
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  match Pool.submit p (fun () -> ()) with
  | _ -> Alcotest.fail "submit after shutdown should raise"
  | exception Invalid_argument _ -> ()

let test_pool_try_await () =
  Pool.with_pool ~domains:2 (fun p ->
      let good = Pool.submit p (fun () -> 41) in
      let bad = Pool.submit p (fun () -> raise (Boom 3)) in
      Alcotest.(check int) "ok result" 41 (Result.get_ok (Pool.try_await good));
      match Pool.try_await bad with
      | Error (Boom 3, _) -> ()
      | Error _ -> Alcotest.fail "wrong exception captured"
      | Ok _ -> Alcotest.fail "expected captured failure")

let test_pool_await_timeout () =
  (* force_spawn: the hung task must run off the awaiting domain even with
     domains = 1, or submit itself would hang. *)
  let p = Pool.create ~force_spawn:true ~domains:1 () in
  let quick = Pool.submit p (fun () -> 7) in
  (match Pool.await_timeout quick ~timeout_s:5.0 with
  | Ok 7 -> ()
  | _ -> Alcotest.fail "fast task should complete inside the deadline");
  let hung = Pool.submit p (fun () -> Unix.sleepf 30.0) in
  let t0 = Unix.gettimeofday () in
  (match Pool.await_timeout hung ~timeout_s:0.3 with
  | Error `Timed_out -> ()
  | _ -> Alcotest.fail "expected timeout");
  Alcotest.(check bool) "gave up promptly" true (Unix.gettimeofday () -. t0 < 5.0);
  (* Abandon must not join the hung worker, and must refuse new work. *)
  Pool.abandon p;
  match Pool.submit p (fun () -> ()) with
  | _ -> Alcotest.fail "submit after abandon should raise"
  | exception Invalid_argument _ -> ()

(* try_await and abandon with several domains submitting into one pool at
   once: every submitter must get its own results back (no cross-talk),
   and an abandon racing live submitters must leave each task either
   completed or permanently pending — never delivered to the wrong
   caller. *)
let test_pool_concurrent_submitters () =
  Pool.with_pool ~domains:4 (fun p ->
      let submitters = 6 and per = 25 in
      let drivers =
        List.init submitters (fun s ->
            Domain.spawn (fun () ->
                List.init per (fun i ->
                    let v = (s * 1000) + i in
                    let t =
                      Pool.submit p (fun () -> if v mod 7 = 0 then raise (Boom v) else v)
                    in
                    (v, t))
                |> List.map (fun (v, t) ->
                       match Pool.try_await t with
                       | Ok got -> got = v && v mod 7 <> 0
                       | Error (Boom got, _) -> got = v && v mod 7 = 0
                       | Error _ -> false)))
      in
      let ok = List.for_all (List.for_all Fun.id) (List.map Domain.join drivers) in
      Alcotest.(check bool) "every submitter saw exactly its own results" true ok)

let test_pool_abandon_under_concurrent_submitters () =
  let p = Pool.create ~force_spawn:true ~domains:2 () in
  let hung = List.init 2 (fun _ -> Pool.submit p (fun () -> Unix.sleepf 30.)) in
  (* Submitters keep firing while the main domain abandons the pool;
     submissions racing the abandon may land or raise Invalid_argument,
     but nothing else, and none may block. *)
  let drivers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let accepted = ref 0 and refused = ref 0 in
            for _ = 1 to 50 do
              match Pool.submit p (fun () -> ()) with
              | _ -> incr accepted
              | exception Invalid_argument _ -> incr refused
            done;
            (!accepted, !refused)))
  in
  Unix.sleepf 0.05;
  let t0 = Unix.gettimeofday () in
  Pool.abandon p;
  Alcotest.(check bool) "abandon does not join hung workers" true
    (Unix.gettimeofday () -. t0 < 5.0);
  let totals = List.map Domain.join drivers in
  List.iter
    (fun (accepted, refused) ->
      Alcotest.(check int) "every racing submit either landed or was refused" 50
        (accepted + refused))
    totals;
  (* After abandon everything is refused. *)
  (match Pool.submit p (fun () -> ()) with
  | _ -> Alcotest.fail "submit after abandon should raise"
  | exception Invalid_argument _ -> ());
  (* The hung tasks were dropped or still running — but an await_timeout
     on them must come back, not hang. *)
  List.iter
    (fun t ->
      match Pool.await_timeout t ~timeout_s:0.2 with
      | Error `Timed_out | Error (`Failed _) -> ()
      | Ok _ -> Alcotest.fail "hung task cannot have completed")
    hung

let small_spec = Engine.default_spec |> Engine.with_vectors 5 |> Engine.with_seed 11

let fake_bench id build =
  { Ee_bench_circuits.Itc99.id; description = "synthetic failure-path benchmark"; build }

let test_suite_isolates_crash () =
  let crash = fake_bench "crash" (fun () -> failwith "synthetic crash") in
  let benchmarks =
    [ Ee_bench_circuits.Itc99.find "b01"; crash; Ee_bench_circuits.Itc99.find "b06" ]
  in
  let s = Engine.run_suite ~spec:small_spec ~domains:2 ~benchmarks () in
  Alcotest.(check int) "one row per benchmark" 3 (List.length s.Engine.results);
  Alcotest.(check int) "two benchmarks survive" 2 (List.length (Engine.ok_results s));
  (match s.Engine.results with
  | [ Ok _; Error f; Ok _ ] ->
      Alcotest.(check string) "failure names the benchmark" "crash" f.Engine.failed_bench;
      Alcotest.(check bool) "failure carries the exception text" true
        (count_substring f.Engine.reason "synthetic crash" = 1);
      Alcotest.(check bool) "a crash is not a timeout" false f.Engine.timed_out
  | _ -> Alcotest.fail "rows must stay in benchmark order with the crash isolated");
  Alcotest.(check int) "table3 averages over surviving rows only" 2
    (List.length s.Engine.table3.Ee_report.Tables.rows)

let test_suite_deadline_on_hung_benchmark () =
  let hang =
    fake_bench "hang"
      (fun () ->
        Unix.sleepf 60.0;
        assert false)
  in
  let benchmarks =
    [ Ee_bench_circuits.Itc99.find "b01"; Ee_bench_circuits.Itc99.find "b06"; hang ]
  in
  let t0 = Unix.gettimeofday () in
  let s = Engine.run_suite ~spec:small_spec ~domains:2 ~deadline_s:1.0 ~benchmarks () in
  Alcotest.(check bool) "suite returns despite the hung benchmark" true
    (Unix.gettimeofday () -. t0 < 30.0);
  Alcotest.(check int) "one row per benchmark" 3 (List.length s.Engine.results);
  (match Engine.failures s with
  | [ f ] ->
      Alcotest.(check string) "hung benchmark reported" "hang" f.Engine.failed_bench;
      Alcotest.(check bool) "flagged as a deadline overrun" true f.Engine.timed_out
  | fs -> Alcotest.fail (Printf.sprintf "expected exactly the hung row, got %d failures" (List.length fs)));
  Alcotest.(check int) "healthy benchmarks unaffected" 2 (List.length (Engine.ok_results s))

(* A non-positive deadline must be rejected loudly, not silently treated
   as "no deadline". *)
let test_suite_rejects_bad_deadline () =
  let benchmarks = [ Ee_bench_circuits.Itc99.find "b01" ] in
  List.iter
    (fun d ->
      match Engine.run_suite ~spec:small_spec ~deadline_s:d ~benchmarks () with
      | _ -> Alcotest.failf "deadline_s = %g should raise" d
      | exception Invalid_argument msg ->
          Alcotest.(check bool) "message names deadline_s" true
            (count_substring msg "deadline_s" = 1))
    [ 0.; -1.; -0.001 ]

let test_spec_fingerprint () =
  let base = Engine.default_spec in
  Alcotest.(check string) "stable across calls" (Engine.spec_fingerprint base)
    (Engine.spec_fingerprint base);
  (* Every knob must perturb the fingerprint. *)
  let variants =
    [
      Engine.with_threshold 1. base;
      Engine.with_coverage_only true base;
      Engine.with_min_coverage 1. base;
      Engine.with_share_triggers true base;
      Engine.with_vectors 7 base;
      Engine.with_seed 7 base;
      Engine.with_gate_delay 2. base;
      Engine.with_ee_overhead 0.75 base;
      Engine.with_selection Engine.Mcr base;
    ]
  in
  let fps = List.map Engine.spec_fingerprint variants in
  let all = Engine.spec_fingerprint base :: fps in
  Alcotest.(check int) "all fingerprints distinct" (List.length all)
    (List.length (List.sort_uniq compare all));
  Alcotest.(check bool) "selection names roundtrip" true
    (Engine.selection_of_string (Engine.selection_to_string Engine.Mcr) = Some Engine.Mcr
    && Engine.selection_of_string (Engine.selection_to_string Engine.Eq1) = Some Engine.Eq1
    && Engine.selection_of_string "nope" = None)

let test_suite_parallel_matches_sequential () =
  let s1 = Engine.run_suite ~spec:small_spec ~domains:1 () in
  let s4 = Engine.run_suite ~spec:small_spec ~domains:4 () in
  Alcotest.(check int) "15 benchmarks" 15 (List.length s1.Engine.results);
  Alcotest.(check bool) "table3 records identical" true (s1.Engine.table3 = s4.Engine.table3);
  (* Byte-identical rendered rows, not just structural equality. *)
  let render s = Ee_util.Table.to_csv (Ee_report.Tables.table3_to_table s.Engine.table3) in
  Alcotest.(check string) "rendered Table 3 identical" (render s1) (render s4)

(* Same identity with per-worker memo contexts warm-started from, and
   merged back into, a caller-held context — the sharded-memo path the
   parallel engine takes.  Rows must not depend on memo state, and the
   shared context must come back populated. *)
let test_suite_parallel_shared_memo () =
  let memo = Ee_core.Trigger.Memo.create () in
  let s1 = Engine.run_suite ~spec:small_spec ~domains:1 () in
  let s4 = Engine.run_suite ~spec:small_spec ~domains:4 ~memo () in
  Alcotest.(check bool) "table3 identical with sharded memos" true
    (s1.Engine.table3 = s4.Engine.table3);
  let render s = Ee_util.Table.to_csv (Ee_report.Tables.table3_to_table s.Engine.table3) in
  Alcotest.(check string) "rendered Table 3 identical" (render s1) (render s4);
  let entries = Ee_core.Trigger.Memo.entries memo in
  Alcotest.(check bool) "workers merged their tables back" true (entries > 0);
  (* A second, warm-started suite must agree again and only grow the
     context (same circuits — same LUT4 functions). *)
  let s4' = Engine.run_suite ~spec:small_spec ~domains:4 ~memo () in
  Alcotest.(check bool) "warm-started suite identical" true
    (s1.Engine.table3 = s4'.Engine.table3);
  Alcotest.(check int) "no new functions on the second pass" entries
    (Ee_core.Trigger.Memo.entries memo)

(* An explicitly chunked suite must also be row-identical. *)
let test_suite_chunk_override () =
  let benchmarks =
    List.map Ee_bench_circuits.Itc99.find [ "b01"; "b02"; "b03"; "b06"; "b09" ]
  in
  let s1 = Engine.run_suite ~spec:small_spec ~domains:1 ~benchmarks () in
  List.iter
    (fun chunk ->
      let s = Engine.run_suite ~spec:small_spec ~domains:3 ~chunk ~benchmarks () in
      Alcotest.(check bool)
        (Printf.sprintf "chunk %d identical to sequential" chunk)
        true
        (s1.Engine.table3 = s.Engine.table3))
    [ 1; 2; 5 ]

let test_run_matches_legacy_pipeline () =
  let b = Ee_bench_circuits.Itc99.find "b04" in
  let spec = small_spec |> Engine.with_threshold 50. in
  let r = Engine.run ~spec b in
  let legacy =
    Ee_report.Pipeline.build ~options:(Engine.synth_options spec) b
  in
  let legacy_row =
    Ee_report.Tables.row_of_artifact ~vectors:5 ~seed:11 ~config:(Engine.sim_config spec) legacy
  in
  Alcotest.(check bool) "row matches legacy call chain" true (r.Engine.row = legacy_row)

let test_trace_spans () =
  let trace = Trace.create () in
  let b = Ee_bench_circuits.Itc99.find "b09" in
  ignore (Engine.run ~spec:small_spec ~trace b);
  let spans = Trace.spans trace in
  Alcotest.(check (list string))
    "one span per stage, in order" Engine.stage_names
    (List.map (fun s -> s.Trace.name) spans);
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check string) "span bench id" "b09" s.Trace.bench;
      Alcotest.(check bool) "non-negative duration" true (s.Trace.dur_us >= 0.))
    spans;
  let stats = Trace.summary trace in
  Alcotest.(check int) "summary has one stat per stage" (List.length Engine.stage_names)
    (List.length stats)

(* A structural well-formedness check over the Chrome JSON: balanced
   braces/brackets outside strings, one event object per span, and the
   mandatory trace_event keys present. *)
let check_json_balanced json =
  let depth = ref 0 and in_string = ref false and escaped = ref false in
  String.iter
    (fun c ->
      if !escaped then escaped := false
      else if !in_string then begin
        if c = '\\' then escaped := true else if c = '"' then in_string := false
      end
      else
        match c with
        | '"' -> in_string := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then Alcotest.fail "unbalanced JSON"
        | _ -> ())
    json;
  Alcotest.(check int) "balanced JSON nesting" 0 !depth;
  Alcotest.(check bool) "no unterminated string" false !in_string

let test_trace_chrome_json () =
  let trace = Trace.create () in
  let suite =
    Engine.run_suite ~spec:small_spec ~trace ~domains:2
      ~benchmarks:
        [ Ee_bench_circuits.Itc99.find "b01"; Ee_bench_circuits.Itc99.find "b06" ]
      ()
  in
  Alcotest.(check int) "two results" 2 (List.length suite.Engine.results);
  let json = Trace.to_chrome_json trace in
  check_json_balanced json;
  Alcotest.(check bool) "has traceEvents" true
    (count_substring json "\"traceEvents\"" = 1);
  let expected_events = 2 * List.length Engine.stage_names in
  Alcotest.(check int) "one complete event per span" expected_events
    (count_substring json "\"ph\":\"X\"");
  List.iter
    (fun stage ->
      Alcotest.(check int)
        (Printf.sprintf "stage %s appears per benchmark" stage)
        2
        (count_substring json (Printf.sprintf "\"name\":\"%s\"" stage)))
    Engine.stage_names

let test_spec_builders () =
  let spec =
    Engine.default_spec
    |> Engine.with_threshold 80.
    |> Engine.with_coverage_only true
    |> Engine.with_min_coverage 25.
    |> Engine.with_share_triggers true
    |> Engine.with_vectors 7
    |> Engine.with_seed 3
    |> Engine.with_gate_delay 2.
    |> Engine.with_ee_overhead 0.5
    |> Engine.with_selection Engine.Mcr
  in
  let o = Engine.synth_options spec in
  Alcotest.(check (float 0.)) "threshold" 80. o.Ee_core.Synth.threshold;
  Alcotest.(check bool) "coverage-only weighting" true
    (o.Ee_core.Synth.weighting = Ee_core.Cost.Coverage_only);
  Alcotest.(check (float 0.)) "min coverage" 25. o.Ee_core.Synth.min_coverage;
  Alcotest.(check bool) "share triggers" true o.Ee_core.Synth.share_triggers;
  let c = Engine.sim_config spec in
  Alcotest.(check (float 0.)) "gate delay" 2. c.Ee_sim.Sim.gate_delay;
  Alcotest.(check (float 0.)) "ee overhead" 0.5 c.Ee_sim.Sim.ee_overhead;
  Alcotest.(check int) "vectors" 7 spec.Engine.vectors;
  Alcotest.(check int) "seed" 3 spec.Engine.seed;
  Alcotest.(check bool) "selection" true (spec.Engine.selection = Engine.Mcr);
  Alcotest.(check bool) "default selection is Eq1" true
    (Engine.default_spec.Engine.selection = Engine.Eq1);
  let m = Engine.mcr_options spec in
  Alcotest.(check (float 0.)) "mcr min coverage" 25. m.Ee_core.Mcr_select.min_coverage;
  Alcotest.(check (float 0.)) "mcr gate delay" 2. m.Ee_core.Mcr_select.gate_delay;
  Alcotest.(check (float 0.)) "mcr ee overhead" 0.5 m.Ee_core.Mcr_select.ee_overhead

(* The Engine's Mcr selection hook must route through Mcr_select and yield
   the same plan as calling it directly. *)
let test_engine_mcr_selection () =
  let b = Ee_bench_circuits.Itc99.find "b06" in
  let spec = small_spec |> Engine.with_selection Engine.Mcr in
  let r = Engine.run ~spec b in
  let pl =
    Ee_phased.Pl.of_netlist (Ee_rtl.Techmap.run_rtl (b.Ee_bench_circuits.Itc99.build ()))
  in
  let _, direct = Ee_core.Mcr_select.run ~options:(Engine.mcr_options spec) pl in
  Alcotest.(check int) "ee gates match direct Mcr_select"
    direct.Ee_core.Synth.ee_gates
    r.Engine.artifact.Ee_report.Pipeline.synth_report.Ee_core.Synth.ee_gates

let suite =
  ( "engine",
    [
      Alcotest.test_case "pool: map preserves order" `Quick test_pool_map_order;
      Alcotest.test_case "pool: chunked map preserves order" `Quick
        test_pool_map_chunked_order;
      Alcotest.test_case "pool: chunked map edge cases" `Quick
        test_pool_map_chunked_empty_and_bad_chunk;
      Alcotest.test_case "pool: chunked map exception semantics" `Quick
        test_pool_map_chunked_exception;
      Alcotest.test_case "pool: worker hooks run once per worker" `Quick
        test_pool_worker_hooks;
      Alcotest.test_case "pool: worker_init state visible to tasks" `Quick
        test_pool_worker_init_domain_state;
      Alcotest.test_case "pool: exceptions propagate" `Quick test_pool_exception;
      Alcotest.test_case "pool: submit after shutdown" `Quick test_pool_submit_after_shutdown;
      Alcotest.test_case "pool: try_await captures failures" `Quick test_pool_try_await;
      Alcotest.test_case "pool: await_timeout gives up on hung tasks" `Quick test_pool_await_timeout;
      Alcotest.test_case "pool: concurrent submitters keep results separate" `Quick
        test_pool_concurrent_submitters;
      Alcotest.test_case "pool: abandon races concurrent submitters safely" `Quick
        test_pool_abandon_under_concurrent_submitters;
      Alcotest.test_case "suite: crash degrades to an error row" `Quick test_suite_isolates_crash;
      Alcotest.test_case "suite: rejects non-positive deadline" `Quick
        test_suite_rejects_bad_deadline;
      Alcotest.test_case "spec fingerprint injective over knobs" `Quick test_spec_fingerprint;
      Alcotest.test_case "suite: deadline bounds a hung benchmark" `Quick
        test_suite_deadline_on_hung_benchmark;
      Alcotest.test_case "suite: 4 domains == sequential" `Slow test_suite_parallel_matches_sequential;
      Alcotest.test_case "suite: sharded memo == sequential" `Slow
        test_suite_parallel_shared_memo;
      Alcotest.test_case "suite: explicit chunk sizes == sequential" `Quick
        test_suite_chunk_override;
      Alcotest.test_case "run == legacy Pipeline+Tables chain" `Quick test_run_matches_legacy_pipeline;
      Alcotest.test_case "trace: one span per stage" `Quick test_trace_spans;
      Alcotest.test_case "trace: Chrome JSON well-formed" `Quick test_trace_chrome_json;
      Alcotest.test_case "spec builders" `Quick test_spec_builders;
      Alcotest.test_case "Mcr selection hook" `Slow test_engine_mcr_selection;
    ] )
