(* Fault-injection campaigns: classification taxonomy, schedule
   insensitivity of the fault-free netlist, and marked-graph token
   forensics. *)

module Fault = Ee_fault.Fault
module Campaign = Ee_fault.Campaign
module Pl = Ee_phased.Pl
module Rail_sim = Ee_phased.Rail_sim
module Netlist = Ee_netlist.Netlist
module Mg = Ee_markedgraph.Marked_graph

let artifact id = Ee_report.Pipeline.build (Ee_bench_circuits.Itc99.find id)

let vectors_and_golden nl ~width ~waves ~seed =
  let rng = Ee_util.Prng.create seed in
  let vectors = List.init waves (fun _ -> Ee_util.Prng.bool_vector rng width) in
  let st = ref (Netlist.initial_state nl) in
  let expected =
    List.map
      (fun vec ->
        let outs, st' = Netlist.step nl !st vec in
        st := st';
        outs)
      vectors
  in
  (vectors, expected)

(* Acceptance: every enumerated fault gets a class, the classes partition
   the fault list, and the fault-free netlist agrees with the golden model
   under every adversarial delay schedule (zero wrong-output without an
   injected fault). *)
let test_campaign_classifies_everything () =
  List.iter
    (fun id ->
      let a = artifact id in
      let pl = a.Ee_report.Pipeline.pl_ee in
      let r = Campaign.run ~waves:10 ~seed:5 ~bench:id pl a.Ee_report.Pipeline.netlist in
      Alcotest.(check int)
        (id ^ ": every enumerated fault classified")
        (List.length (Fault.enumerate pl ~waves:10))
        (List.length r.Campaign.records);
      Alcotest.(check int)
        (id ^ ": classes partition the fault list")
        (List.length r.Campaign.records)
        (r.Campaign.masked + r.Campaign.detected + r.Campaign.deadlock + r.Campaign.wrong_output);
      Alcotest.(check int) (id ^ ": all four schedules ran") 4 (List.length r.Campaign.schedules);
      List.iter
        (fun (s : Campaign.schedule_check) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: schedule %s agrees with golden model" id s.Campaign.schedule)
            true s.Campaign.agrees)
        r.Campaign.schedules)
    [ "b01"; "b03"; "b06" ]

(* The paper's netlists detect or starve on rail faults; only v-rail
   faults at the output boundary can silently mis-compute.  b01 has
   none; b04 has some, and the campaign must find them. *)
let test_wrong_output_class () =
  let a = artifact "b01" in
  let r =
    Campaign.run ~waves:16 ~seed:2002 ~bench:"b01" a.Ee_report.Pipeline.pl_ee
      a.Ee_report.Pipeline.netlist
  in
  Alcotest.(check int) "b01 has no silent corruption" 0 r.Campaign.wrong_output;
  let a4 = artifact "b04" in
  let r4 =
    Campaign.run ~waves:16 ~seed:2002 ~bench:"b04" a4.Ee_report.Pipeline.pl_ee
      a4.Ee_report.Pipeline.netlist
  in
  Alcotest.(check bool) "b04 exposes silent v-rail corruption" true (r4.Campaign.wrong_output > 0);
  List.iter
    (fun (rec_ : Campaign.record) ->
      match rec_.Campaign.outcome with
      | Campaign.Wrong_output _ -> (
          match rec_.Campaign.fault with
          | Fault.Stuck_rail { rail = Fault.V; _ } | Fault.Glitch_rail { rail = Fault.V; _ } -> ()
          | f ->
              Alcotest.fail
                ("only v-rail faults may corrupt silently, got " ^ Fault.to_string f))
      | _ -> ())
    r4.Campaign.records

(* Direct taxonomy checks on single faults. *)
let first_gate_with_comb_consumer pl =
  let gates = Pl.gates pl in
  let has_comb_consumer i =
    Array.exists
      (fun g ->
        match g.Pl.kind with
        | Pl.Gate _ | Pl.Trigger _ | Pl.Register _ -> Array.mem i g.Pl.fanin
        | _ -> false)
      gates
  in
  let rec find i =
    if i >= Array.length gates then Alcotest.fail "no internal gate found"
    else
      match gates.(i).Pl.kind with
      | Pl.Gate _ when has_comb_consumer i -> i
      | _ -> find (i + 1)
  in
  find 0

let test_single_fault_taxonomy () =
  let a = artifact "b06" in
  let pl = a.Ee_report.Pipeline.pl_ee in
  let width = Array.length (Pl.source_ids pl) in
  let vectors, expected =
    vectors_and_golden a.Ee_report.Pipeline.netlist ~width ~waves:8 ~seed:3
  in
  let gate = first_gate_with_comb_consumer pl in
  (match Campaign.run_fault pl ~vectors ~expected (Fault.Token_dup { gate; wave = 2 }) with
  | Campaign.Detected _ -> ()
  | o -> Alcotest.fail ("token dup should be detected, got " ^ Campaign.outcome_class o));
  (match Campaign.run_fault pl ~vectors ~expected (Fault.Token_loss { gate; wave = 2 }) with
  | Campaign.Deadlock s ->
      Alcotest.(check int) "stalls in the faulted wave" 2 s.Rail_sim.stall_wave;
      Alcotest.(check bool) "forensics name the dropped gate as a root" true
        (List.mem gate s.Rail_sim.roots)
  | o -> Alcotest.fail ("token loss should deadlock, got " ^ Campaign.outcome_class o));
  (* Glitching one wire of one transition either cancels the legal flip
     (starvation, with a token-free cycle to blame) or adds a second flip
     (detected breach) — one of each across the two rails. *)
  let glitch rail = Campaign.run_fault pl ~vectors ~expected (Fault.Glitch_rail { gate; rail; wave = 2 }) in
  (match (glitch Fault.V, glitch Fault.T) with
  | Campaign.Detected _, Campaign.Deadlock s | Campaign.Deadlock s, Campaign.Detected _ ->
      Alcotest.(check bool) "stale source named" true (List.mem gate s.Rail_sim.stale_sources);
      Alcotest.(check bool) "token-free cycle found" true (s.Rail_sim.blamed_cycle <> [])
  | a, b ->
      Alcotest.fail
        (Printf.sprintf "glitch pair should be detected+deadlock, got %s/%s"
           (Campaign.outcome_class a) (Campaign.outcome_class b)))

let test_trigger_suppression_harmless () =
  let a = artifact "b01" in
  let pl = a.Ee_report.Pipeline.pl_ee in
  let width = Array.length (Pl.source_ids pl) in
  let vectors, expected =
    vectors_and_golden a.Ee_report.Pipeline.netlist ~width ~waves:8 ~seed:3
  in
  let masters =
    List.filter (fun i -> Pl.ee pl i <> None)
      (List.init (Array.length (Pl.gates pl)) Fun.id)
  in
  Alcotest.(check bool) "b01 has EE masters" true (masters <> []);
  List.iter
    (fun master ->
      List.iter
        (fun wave ->
          match
            Campaign.run_fault pl ~vectors ~expected
              (Fault.Trigger_corrupt { master; wave; forced = false })
          with
          | Campaign.Masked -> ()
          | o ->
              Alcotest.fail
                (Printf.sprintf "suppressing EE on master %d must be harmless, got %s" master
                   (Campaign.outcome_class o)))
        [ 0; 3 ])
    masters

let test_token_audit () =
  let a = artifact "b01" in
  let pl = a.Ee_report.Pipeline.pl_ee in
  let steps = 50 * Array.length (Pl.gates pl) in
  let audits = Campaign.token_audit pl ~steps ~seed:3 in
  Alcotest.(check bool) "audited some arcs" true (List.length audits > 10);
  let losses = List.filter (fun (x : Campaign.token_audit) -> x.Campaign.delta = -1) audits in
  let dups = List.filter (fun (x : Campaign.token_audit) -> x.Campaign.delta = 1) audits in
  Alcotest.(check bool) "some losses and some dups" true (losses <> [] && dups <> []);
  List.iter
    (fun (x : Campaign.token_audit) ->
      match x.Campaign.verdict with
      | Campaign.Audit_dead d ->
          Alcotest.(check bool) "a true deadlock: nothing enabled" true (d.Mg.dead_enabled = []);
          Alcotest.(check bool) "forensics blame a token-free cycle" true (d.Mg.dead_cycle <> [])
      | Campaign.Audit_unsafe _ -> Alcotest.fail "token loss cannot create a duplicate"
      | Campaign.Audit_live -> Alcotest.fail "token loss must starve the graph")
    losses;
  List.iter
    (fun (x : Campaign.token_audit) ->
      match x.Campaign.verdict with
      | Campaign.Audit_unsafe _ -> ()
      | _ -> Alcotest.fail "duplicate token must trip the safety check")
    dups

(* Structural well-formedness of the JSON/CSV reports. *)
let check_json_balanced json =
  let depth = ref 0 and in_string = ref false and escaped = ref false in
  String.iter
    (fun c ->
      if !escaped then escaped := false
      else if !in_string then begin
        if c = '\\' then escaped := true else if c = '"' then in_string := false
      end
      else
        match c with
        | '"' -> in_string := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then Alcotest.fail "unbalanced JSON"
        | _ -> ())
    json;
  Alcotest.(check int) "balanced JSON nesting" 0 !depth;
  Alcotest.(check bool) "no unterminated string" false !in_string

let count_substring hay needle =
  let n = String.length needle in
  let rec go from acc =
    if from + n > String.length hay then acc
    else if String.sub hay from n = needle then go (from + 1) (acc + 1)
    else go (from + 1) acc
  in
  go 0 0

let test_report_rendering () =
  let a = artifact "b06" in
  let r =
    Campaign.run ~waves:8 ~seed:5 ~bench:"b06" a.Ee_report.Pipeline.pl_ee
      a.Ee_report.Pipeline.netlist
  in
  let json = Campaign.to_json r in
  check_json_balanced json;
  Alcotest.(check int) "one class field per fault record"
    (List.length r.Campaign.records)
    (count_substring json "\"class\":");
  Alcotest.(check int) "four schedule objects" 4 (count_substring json "\"schedule\":");
  let csv = Campaign.to_csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header plus one CSV line per fault"
    (1 + List.length r.Campaign.records)
    (List.length lines)

let suite =
  ( "fault",
    [
      Alcotest.test_case "campaign classifies every fault; schedules agree" `Quick
        test_campaign_classifies_everything;
      Alcotest.test_case "wrong-output class is exactly v-rail faults" `Slow
        test_wrong_output_class;
      Alcotest.test_case "single-fault taxonomy" `Quick test_single_fault_taxonomy;
      Alcotest.test_case "suppressing EE triggers is harmless" `Quick
        test_trigger_suppression_harmless;
      Alcotest.test_case "token audit: loss starves, dup trips safety" `Quick test_token_audit;
      Alcotest.test_case "JSON/CSV reports well-formed" `Quick test_report_rendering;
    ] )
