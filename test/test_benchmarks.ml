module Itc99 = Ee_bench_circuits.Itc99
open Ee_rtl

let test_fifteen_unique () =
  Alcotest.(check int) "fifteen circuits" 15 (List.length Itc99.all);
  let ids = List.map (fun b -> b.Itc99.id) Itc99.all in
  Alcotest.(check int) "unique ids" 15 (List.length (List.sort_uniq compare ids));
  List.iteri
    (fun i b ->
      Alcotest.(check string) "ids in Table 3 order"
        (Printf.sprintf "b%02d" (i + 1))
        b.Itc99.id)
    Itc99.all

let test_all_validate () =
  List.iter
    (fun b ->
      let d = b.Itc99.build () in
      Rtl.validate d;
      Alcotest.(check string) "design name matches id" b.Itc99.id d.Rtl.name)
    Itc99.all

let test_find () =
  Alcotest.(check string) "find b07" "Count points on a straight line"
    (Itc99.find "b07").Itc99.description;
  match Itc99.find "b99" with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "error names the id" true
        (Astring_contains.contains msg "unknown benchmark \"b99\"");
      (* The error enumerates every valid benchmark id. *)
      List.iter
        (fun (b : Itc99.benchmark) ->
          Alcotest.(check bool)
            (Printf.sprintf "error lists %s" b.Itc99.id)
            true
            (Astring_contains.contains msg b.Itc99.id))
        Itc99.all
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_relative_sizes () =
  (* The paper's size ordering must be respected qualitatively: the tiny
     FSMs are tiny, the processors dominate. *)
  let luts id =
    Ee_netlist.Netlist.lut_count (Techmap.run_rtl ((Itc99.find id).Itc99.build ()))
  in
  Alcotest.(check bool) "b02 is the smallest kind" true (luts "b02" < 10);
  Alcotest.(check bool) "b06 small" true (luts "b06" < 20);
  Alcotest.(check bool) "b12 > b01" true (luts "b12" > luts "b01");
  Alcotest.(check bool) "b14 biggest but b15" true (luts "b14" > luts "b12");
  Alcotest.(check bool) "b15 biggest" true (luts "b15" > luts "b14")

let test_b01_compares_flows () =
  let d = Itc99.b01 () in
  (* Identical streams keep the diff counter at zero. *)
  let env = ref (Rtl.initial_env d) in
  for _ = 1 to 10 do
    let _, env' = Rtl.step d !env [ ("line1", 1); ("line2", 1); ("restart", 0) ] in
    env := env'
  done;
  let outs, _ = Rtl.step d !env [ ("line1", 1); ("line2", 1); ("restart", 0) ] in
  Alcotest.(check int) "no overflow on equal flows" 0 (List.assoc "overflw" outs);
  (* Mismatching streams eventually saturate the counter. *)
  let env = ref (Rtl.initial_env d) in
  for _ = 1 to 20 do
    let _, env' = Rtl.step d !env [ ("line1", 1); ("line2", 0); ("restart", 0) ] in
    env := env'
  done;
  let outs, _ = Rtl.step d !env [ ("line1", 1); ("line2", 0); ("restart", 0) ] in
  Alcotest.(check int) "mismatch saturates" 1 (List.assoc "overflw" outs)

let test_b02_recognizes_bcd () =
  let d = Itc99.b02 () in
  (* Stream in 1001 (9, valid BCD) MSB first, then sample u at phase 0. *)
  let env = ref (Rtl.initial_env d) in
  let feed bit =
    let outs, env' = Rtl.step d !env [ ("linea", bit) ] in
    env := env';
    outs
  in
  ignore (feed 1);
  ignore (feed 0);
  ignore (feed 0);
  ignore (feed 1);
  let outs = feed 0 in
  Alcotest.(check int) "9 is BCD" 1 (List.assoc "u" outs);
  (* Stream in 1111 (15, not BCD). *)
  let env2 = ref (Rtl.initial_env d) in
  let feed2 bit =
    let outs, env' = Rtl.step d !env2 [ ("linea", bit) ] in
    env2 := env';
    outs
  in
  ignore (feed2 1);
  ignore (feed2 1);
  ignore (feed2 1);
  ignore (feed2 1);
  let outs = feed2 0 in
  Alcotest.(check int) "15 is not BCD" 0 (List.assoc "u" outs)

let test_b04_min_max () =
  let d = Itc99.b04 () in
  let env = ref (Rtl.initial_env d) in
  let feed v =
    let outs, env' = Rtl.step d !env [ ("data_in", v); ("restart", 0); ("enable", 1) ] in
    env := env';
    outs
  in
  ignore (feed 100);
  ignore (feed 7);
  ignore (feed 3000);
  let outs = feed 500 in
  Alcotest.(check int) "min" 7 (List.assoc "min" outs);
  Alcotest.(check int) "max" 3000 (List.assoc "max" outs);
  Alcotest.(check int) "spread" 2993 (List.assoc "spread" outs)

let test_b10_voting () =
  let d = Itc99.b10 () in
  let step votes quorum =
    let outs, _ =
      Rtl.step d (Rtl.initial_env d) [ ("votes", votes); ("quorum", quorum); ("close", 0) ]
    in
    outs
  in
  Alcotest.(check int) "tally of 0b10110101" 5 (List.assoc "tally" (step 0b10110101 3));
  Alcotest.(check int) "passes quorum" 1 (List.assoc "passed" (step 0b10110101 5));
  Alcotest.(check int) "fails quorum" 0 (List.assoc "passed" (step 0b10110101 6));
  Alcotest.(check int) "unanimous" 1 (List.assoc "unanimous" (step 0xFF 1))

let test_b11_scrambles () =
  let d = Itc99.b11 () in
  (* The cipher must be non-trivial: different inputs give different
     outputs, and the key evolves the stream. *)
  let out1, env1 =
    Rtl.step d (Rtl.initial_env d) [ ("char_in", 0x41); ("load_key", 1); ("key_in", 0) ]
  in
  let out2, _ = Rtl.step d env1 [ ("char_in", 0x41); ("load_key", 1); ("key_in", 0) ] in
  Alcotest.(check bool) "scrambled differs from input" true
    (List.assoc "char_out" out1 <> 0x41);
  Alcotest.(check bool) "stream cipher evolves" true
    (List.assoc "char_out" out1 <> List.assoc "char_out" out2)

let test_b14_processor_alu () =
  let d = Itc99.b14 () in
  (* Load 5 into acc via data_in (opcode 14 = load), then add immediate 3
     (opcode 0, immediate mode). *)
  let env = ref (Rtl.initial_env d) in
  let instr_load = 14 lsl 12 in
  let _, env' = Rtl.step d !env [ ("instr", instr_load); ("data_in", 5); ("irq", 0) ] in
  env := env';
  let instr_addi = (0 lsl 12) lor (1 lsl 8) lor 3 in
  let _, env'' = Rtl.step d !env [ ("instr", instr_addi); ("data_in", 0); ("irq", 0) ] in
  env := env'';
  let outs, _ = Rtl.step d !env [ ("instr", instr_load); ("data_in", 0); ("irq", 0) ] in
  Alcotest.(check int) "acc = 5 + 3" 8 (List.assoc "acc_out" outs)

let test_b14_store_and_operand () =
  let d = Itc99.b14 () in
  let env = ref (Rtl.initial_env d) in
  let step instr data =
    let outs, env' = Rtl.step d !env [ ("instr", instr); ("data_in", data); ("irq", 0) ] in
    env := env';
    outs
  in
  (* load 9; store into r2; load 4; add r2 -> acc = 13. *)
  ignore (step (14 lsl 12) 9);
  ignore (step ((13 lsl 12) lor (2 lsl 9)) 0);
  ignore (step (14 lsl 12) 4);
  ignore (step ((0 lsl 12) lor (2 lsl 9)) 0);
  let outs = step ((13 lsl 12) lor (2 lsl 9)) 0 in
  Alcotest.(check int) "acc = 4 + r2" 13 (List.assoc "acc_out" outs);
  Alcotest.(check int) "store flag" 1 (List.assoc "store" outs)

let test_b14_mul_matches_shift_add () =
  (* The multiplier accumulates acc << k for each low operand bit. *)
  let d = Itc99.b14 () in
  let env = ref (Rtl.initial_env d) in
  let step instr data =
    let outs, env' = Rtl.step d !env [ ("instr", instr); ("data_in", data); ("irq", 0) ] in
    env := env';
    outs
  in
  ignore (step (14 lsl 12) 7);
  ignore (step ((13 lsl 12) lor (3 lsl 9)) 0);
  ignore (step (14 lsl 12) 5);
  ignore (step ((12 lsl 12) lor (3 lsl 9)) 0);
  let outs = step (15 lsl 12) 0 in
  Alcotest.(check int) "5 * 7" 35 (List.assoc "acc_out" outs)

let test_b14_pc_increments () =
  let d = Itc99.b14 () in
  let env = ref (Rtl.initial_env d) in
  let step instr =
    let outs, env' = Rtl.step d !env [ ("instr", instr); ("data_in", 0); ("irq", 0) ] in
    env := env';
    outs
  in
  ignore (step 0);
  let pc1 = List.assoc "pc_out" (step 0) in
  let pc2 = List.assoc "pc_out" (step 0) in
  Alcotest.(check int) "pc increments" (pc1 + 1) pc2

let test_processor_pc_advances () =
  let d = Itc99.b15 () in
  let env = ref (Rtl.initial_env d) in
  let pc0 =
    let outs, env' = Rtl.step d !env [ ("instr", 0); ("data_in", 0); ("irq", 0) ] in
    env := env';
    List.assoc "pc_out" outs
  in
  let pc1 =
    let outs, _ = Rtl.step d !env [ ("instr", 0); ("data_in", 0); ("irq", 0) ] in
    List.assoc "pc_out" outs
  in
  Alcotest.(check bool) "pc changes" true (pc0 <> pc1)

let suite =
  ( "benchmarks",
    [
      Alcotest.test_case "fifteen unique" `Quick test_fifteen_unique;
      Alcotest.test_case "all validate" `Quick test_all_validate;
      Alcotest.test_case "find" `Quick test_find;
      Alcotest.test_case "relative sizes" `Quick test_relative_sizes;
      Alcotest.test_case "b01 compares flows" `Quick test_b01_compares_flows;
      Alcotest.test_case "b02 recognizes BCD" `Quick test_b02_recognizes_bcd;
      Alcotest.test_case "b04 min/max" `Quick test_b04_min_max;
      Alcotest.test_case "b10 voting" `Quick test_b10_voting;
      Alcotest.test_case "b11 scrambles" `Quick test_b11_scrambles;
      Alcotest.test_case "b14 processor alu" `Quick test_b14_processor_alu;
      Alcotest.test_case "processor pc advances" `Quick test_processor_pc_advances;
      Alcotest.test_case "b14 store/operand" `Quick test_b14_store_and_operand;
      Alcotest.test_case "b14 multiplier" `Quick test_b14_mul_matches_shift_add;
      Alcotest.test_case "b14 pc increments" `Quick test_b14_pc_increments;
    ] )
