(* The synthesis service: JSON codec, wire protocol, and an end-to-end
   daemon exercise over a Unix socket — caching, admission control,
   deadlines, and clean shutdown. *)

module Json = Ee_export.Json
module Protocol = Ee_serve.Protocol
module Server = Ee_serve.Server
module Client = Ee_serve.Client
module Fleet_client = Ee_serve.Fleet_client
module Supervisor = Ee_serve.Supervisor
module Engine = Ee_engine.Engine

(* ---------------- Json codec ---------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("t", Json.Bool true);
        ("n", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("s", Json.String "line1\nline2 \"quoted\" \\ tab\t");
        ("l", Json.List [ Json.Int 1; Json.Obj [ ("k", Json.String "v") ]; Json.Null ]);
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
      ]
  in
  let s = Json.to_string doc in
  Alcotest.(check bool) "single line" false (String.contains s '\n');
  (match Json.parse s with
  | Ok parsed -> Alcotest.(check bool) "roundtrip" true (parsed = doc)
  | Error e -> Alcotest.fail e);
  (* Numbers: integral stays Int, fractional becomes Float. *)
  (match Json.parse "{\"a\":3,\"b\":3.25,\"c\":-0.5e1}" with
  | Ok j ->
      Alcotest.(check (option int)) "int" (Some 3) (Option.bind (Json.member "a" j) Json.to_int);
      Alcotest.(check bool) "float" true (Json.member "b" j = Some (Json.Float 3.25));
      Alcotest.(check bool) "exponent" true (Json.member "c" j = Some (Json.Float (-5.)))
  | Error e -> Alcotest.fail e);
  (* Unicode escapes decode to UTF-8. *)
  (match Json.parse "\"a\\u00e9b\"" with
  | Ok (Json.String s) -> Alcotest.(check string) "utf8" "a\xc3\xa9b" s
  | _ -> Alcotest.fail "unicode escape")

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "should reject %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}"; "nan" ]

let test_json_raw_compact () =
  let multi = "{\n  \"x\": 1\n}" in
  let s = Json.to_string (Json.Obj [ ("payload", Json.raw_compact multi) ]) in
  Alcotest.(check bool) "no newline" false (String.contains s '\n');
  match Json.parse s with
  | Ok j ->
      Alcotest.(check (option int)) "raw splice still parses" (Some 1)
        (Option.bind (Option.bind (Json.member "payload" j) (Json.member "x")) Json.to_int)
  | Error e -> Alcotest.fail e

(* ---------------- Protocol ---------------- *)

let test_protocol_roundtrip () =
  let spec =
    Engine.default_spec |> Engine.with_vectors 17 |> Engine.with_threshold 50.
    |> Engine.with_selection Engine.Search |> Engine.with_lut_k 6
  in
  let env =
    {
      Protocol.id = Json.Int 9;
      deadline_s = Some 2.5;
      req = Protocol.Synth { source = `Bench "b04"; spec; search = true };
    }
  in
  let line = Json.to_string (Protocol.envelope_to_json env) in
  match Protocol.parse_line line with
  | Error e -> Alcotest.fail e
  | Ok env' ->
      Alcotest.(check bool) "id survives" true (env'.Protocol.id = Json.Int 9);
      Alcotest.(check (option (float 1e-9))) "deadline survives" (Some 2.5)
        env'.Protocol.deadline_s;
      (match env'.Protocol.req with
      | Protocol.Synth { source = `Bench "b04"; spec = s; search } ->
          Alcotest.(check string) "spec survives" (Engine.spec_fingerprint spec)
            (Engine.spec_fingerprint s);
          Alcotest.(check bool) "search flag survives" true search
      | _ -> Alcotest.fail "request shape changed")

let test_protocol_rejects () =
  List.iter
    (fun line ->
      match Protocol.parse_line line with
      | Ok _ -> Alcotest.failf "should reject %s" line
      | Error _ -> ())
    [
      "not json";
      "{}";
      "{\"cmd\":\"frobnicate\"}";
      "{\"cmd\":\"synth\"}";
      "{\"cmd\":\"synth\",\"bench\":\"b01\",\"blif\":\"x\"}";
      "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":0}";
      "{\"cmd\":\"synth\",\"bench\":\"b01\",\"deadline_s\":0}";
      "{\"cmd\":\"synth\",\"bench\":\"b01\",\"selection\":\"best\"}";
      "{\"cmd\":\"synth\",\"bench\":\"b01\",\"lut_k\":3}";
      "{\"cmd\":\"synth\",\"bench\":\"b01\",\"lut_k\":9}";
      "{\"cmd\":\"synth\",\"bench\":\"b01\",\"search\":\"yes\"}";
      "{\"cmd\":\"perf\"}";
    ]

(* ---------------- End to end ---------------- *)

let sock_counter = ref 0

let with_server ?(shards = 1) ?(domains = 1) ?(max_pending = 8) ?throttle_pending
    ?shed_pending ?backlog ?default_deadline_s f =
  incr sock_counter;
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ee_serve_test_%d_%d.sock" (Unix.getpid ()) !sock_counter)
  in
  let stop = Atomic.make false in
  let cfg =
    {
      Server.default_config with
      Server.address = `Unix sock;
      shards;
      domains;
      max_pending;
      throttle_pending;
      shed_pending;
      backlog;
      default_deadline_s;
      shutdown_grace_s = 1.;
    }
  in
  let srv = Domain.spawn (fun () -> Server.serve ~stop cfg) in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join srv)
    (fun () -> f sock)

let send sock line =
  let c = Client.connect ~retries:100 (`Unix sock) in
  let resp = Client.request_line c line in
  Client.close c;
  match Json.parse resp with Ok j -> j | Error e -> Alcotest.failf "bad response %S: %s" resp e

let get j path =
  List.fold_left (fun acc name -> Option.bind acc (Json.member name)) (Some j) path

let check_status j expected =
  Alcotest.(check (option string))
    ("status " ^ expected)
    (Some expected)
    (Option.bind (Json.member "status" j) Json.to_string_opt)

let check_error j code =
  check_status j "error";
  Alcotest.(check (option string)) ("error code " ^ code) (Some code)
    (Option.bind (Json.member "error" j) Json.to_string_opt)

let test_e2e_synth_and_cache () =
  with_server (fun sock ->
      let line = "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":5,\"id\":\"req-1\"}" in
      let r1 = send sock line in
      check_status r1 "ok";
      Alcotest.(check (option string)) "id echoed" (Some "req-1")
        (Option.bind (Json.member "id" r1) Json.to_string_opt);
      Alcotest.(check (option bool)) "first is cold" (Some false)
        (Option.bind (Json.member "cached" r1) Json.to_bool);
      Alcotest.(check (option string)) "row id" (Some "b01")
        (Option.bind (get r1 [ "result"; "id" ]) Json.to_string_opt);
      Alcotest.(check bool) "has ee gate count" true
        (Option.bind (get r1 [ "result"; "ee_gates" ]) Json.to_int <> None);
      (* Identical request on a fresh connection: served from the cache. *)
      let r2 = send sock line in
      check_status r2 "ok";
      Alcotest.(check (option bool)) "second is cached" (Some true)
        (Option.bind (Json.member "cached" r2) Json.to_bool);
      Alcotest.(check bool) "identical payload" true
        (Json.member "result" r1 = Json.member "result" r2);
      (* A different spec is a different key. *)
      let r3 = send sock "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":6}" in
      Alcotest.(check (option bool)) "changed spec misses" (Some false)
        (Option.bind (Json.member "cached" r3) Json.to_bool);
      (* Stats reflect the traffic. *)
      let s = send sock "{\"cmd\":\"stats\"}" in
      check_status s "ok";
      Alcotest.(check bool) "cache hits counted" true
        (match Option.bind (get s [ "result"; "cache"; "hits" ]) Json.to_int with
        | Some h -> h >= 1
        | None -> false);
      Alcotest.(check bool) "synth latencies recorded" true
        (get s [ "result"; "commands"; "synth"; "latency_ms"; "p50" ] <> None))

let test_e2e_search_section () =
  with_server (fun sock ->
      (* A search-enabled synth carries the extra section and caches under
         its own key, distinct from the same spec without "search". *)
      let line =
        "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":5,\"selection\":\"search\",\"search\":true,\"lut_k\":5}"
      in
      let r1 = send sock line in
      check_status r1 "ok";
      Alcotest.(check (option bool)) "first is cold" (Some false)
        (Option.bind (Json.member "cached" r1) Json.to_bool);
      Alcotest.(check (option string)) "selection echoed" (Some "search")
        (Option.bind (get r1 [ "result"; "selection" ]) Json.to_string_opt);
      let lam_mcr = Option.bind (get r1 [ "result"; "search"; "lambda_mcr" ]) Json.to_float in
      let lam_search =
        Option.bind (get r1 [ "result"; "search"; "lambda_search" ]) Json.to_float
      in
      (match (lam_mcr, lam_search) with
      | Some m, Some s ->
          Alcotest.(check bool) "search lambda never worse than mcr" true (s <= m)
      | _ -> Alcotest.fail "missing search lambda table");
      Alcotest.(check (option int)) "wide summary at lut_k" (Some 5)
        (Option.bind (get r1 [ "result"; "search"; "wide"; "lut_k" ]) Json.to_int);
      let r2 = send sock line in
      Alcotest.(check (option bool)) "repeat is cached" (Some true)
        (Option.bind (Json.member "cached" r2) Json.to_bool);
      Alcotest.(check bool) "identical payload" true
        (Json.member "result" r1 = Json.member "result" r2);
      (* Same spec without the search flag: distinct cache key, no section. *)
      let r3 =
        send sock
          "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":5,\"selection\":\"search\",\"lut_k\":5}"
      in
      Alcotest.(check (option bool)) "flagless request misses" (Some false)
        (Option.bind (Json.member "cached" r3) Json.to_bool);
      Alcotest.(check bool) "no section without the flag" true
        (get r3 [ "result"; "search" ] = None))

let test_e2e_inline_blif () =
  with_server (fun sock ->
      let blif =
        ".model ha\\n.inputs a b\\n.outputs s c\\n.names a b s\\n10 1\\n01 1\\n.names a b c\\n11 1\\n.end\\n"
      in
      let r =
        send sock (Printf.sprintf "{\"cmd\":\"synth\",\"blif\":\"%s\",\"vectors\":4}" blif)
      in
      check_status r "ok";
      Alcotest.(check (option string)) "netlist row" (Some "netlist")
        (Option.bind (get r [ "result"; "id" ]) Json.to_string_opt);
      (* Same netlist again: content-addressed, so cached. *)
      let r2 =
        send sock (Printf.sprintf "{\"cmd\":\"synth\",\"blif\":\"%s\",\"vectors\":4}" blif)
      in
      Alcotest.(check (option bool)) "inline blif cached by content" (Some true)
        (Option.bind (Json.member "cached" r2) Json.to_bool);
      (* Malformed BLIF is the client's fault, not an internal error. *)
      let bad = send sock "{\"cmd\":\"synth\",\"blif\":\"garbage\"}" in
      check_error bad "bad_request")

let test_e2e_not_found_and_bad_line () =
  with_server (fun sock ->
      check_error (send sock "{\"cmd\":\"synth\",\"bench\":\"b99\"}") "not_found";
      check_error (send sock "this is not json") "bad_request";
      (* The same connection stays usable after an error. *)
      let c = Client.connect ~retries:100 (`Unix sock) in
      let e = Client.request_line c "{\"cmd\":\"nope\"}" in
      let ok = Client.request_line c "{\"cmd\":\"ping\"}" in
      Client.close c;
      Alcotest.(check bool) "error then ping" true
        (match (Json.parse e, Json.parse ok) with
        | Ok e, Ok ok ->
            Json.member "status" e = Some (Json.String "error")
            && Json.member "status" ok = Some (Json.String "ok")
        | _ -> false))

let test_e2e_overload () =
  with_server ~domains:1 ~max_pending:1 (fun sock ->
      (* Fill the single admission slot with a slow request on one
         connection, then a second connection must be rejected, not
         queued. *)
      let slow = Client.connect ~retries:100 (`Unix sock) in
      let t = Domain.spawn (fun () -> Client.request_line slow "{\"cmd\":\"sleep\",\"seconds\":1.5}") in
      Unix.sleepf 0.4;
      let r = send sock "{\"cmd\":\"sleep\",\"seconds\":0.1}" in
      check_error r "overloaded";
      (* ping is answered inline, never subject to admission control. *)
      check_status (send sock "{\"cmd\":\"ping\"}") "ok";
      let slow_resp = Domain.join t in
      Client.close slow;
      Alcotest.(check bool) "slow request still completed" true
        (match Json.parse slow_resp with
        | Ok j -> Json.member "status" j = Some (Json.String "ok")
        | Error _ -> false);
      (* Slot free again: the next request is admitted. *)
      check_status (send sock "{\"cmd\":\"sleep\",\"seconds\":0.01}") "ok")

let test_e2e_deadline () =
  with_server ~domains:1 (fun sock ->
      let t0 = Unix.gettimeofday () in
      let r = send sock "{\"cmd\":\"sleep\",\"seconds\":10,\"deadline_s\":0.3}" in
      let elapsed = Unix.gettimeofday () -. t0 in
      check_error r "deadline_exceeded";
      Alcotest.(check bool) "answered at the deadline, not after the sleep" true
        (elapsed < 5.);
      (* The daemon survives: the worker is still busy but the loop and a
         second worker slot (none here — same worker after it drains) keep
         serving inline commands. *)
      check_status (send sock "{\"cmd\":\"ping\"}") "ok";
      check_status (send sock "{\"cmd\":\"stats\"}") "ok")

let test_e2e_default_deadline () =
  with_server ~domains:1 ~default_deadline_s:0.3 (fun sock ->
      let r = send sock "{\"cmd\":\"sleep\",\"seconds\":10}" in
      check_error r "deadline_exceeded")

let test_e2e_shutdown () =
  with_server (fun sock ->
      check_status (send sock "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":5}") "ok";
      let r = send sock "{\"cmd\":\"shutdown\"}" in
      check_status r "ok";
      (* The listener closes promptly: connects start failing. *)
      let gone =
        let rec probe n =
          if n = 0 then false
          else
            match Client.connect (`Unix sock) with
            | exception Unix.Unix_error _ -> true
            | c -> (
                (* Accepted just before the close raced us — requests on it
                   must be refused as shutting down or the socket dropped. *)
                match Client.request_line c "{\"cmd\":\"ping\"}" with
                | exception _ ->
                    Client.close c;
                    true
                | resp ->
                    Client.close c;
                    (match Json.parse resp with
                    | Ok j when Json.member "error" j = Some (Json.String "shutting_down") ->
                        true
                    | _ ->
                        Unix.sleepf 0.05;
                        probe (n - 1)))
        in
        probe 40
      in
      Alcotest.(check bool) "server stopped accepting" true gone)
  (* with_server joins the server domain, proving the loop terminated. *)

let test_tier_thresholds () =
  let cfg = { Server.default_config with Server.max_pending = 8 } in
  Alcotest.(check (pair int int)) "defaults at half and three-quarters" (4, 6)
    (Server.tier_thresholds cfg);
  Alcotest.(check (pair int int)) "explicit watermarks" (2, 5)
    (Server.tier_thresholds
       { cfg with Server.throttle_pending = Some 2; shed_pending = Some 5 });
  Alcotest.(check (pair int int)) "clamped into 1 <= t <= s <= max_pending" (1, 8)
    (Server.tier_thresholds
       { cfg with Server.throttle_pending = Some 0; shed_pending = Some 99 });
  Alcotest.(check (pair int int)) "shed never below throttle" (6, 6)
    (Server.tier_thresholds
       { cfg with Server.throttle_pending = Some 6; shed_pending = Some 2 });
  Alcotest.(check int) "backlog defaults to at least the admission bound" 64
    (Server.backlog_of cfg);
  Alcotest.(check int) "large queues widen the backlog" 200
    (Server.backlog_of { cfg with Server.max_pending = 200 });
  Alcotest.(check int) "explicit backlog wins" 4
    (Server.backlog_of { cfg with Server.backlog = Some 4 })

let test_e2e_tier_ladder () =
  (* One worker, three admission slots, watermarks at 1 (throttle) and 2
     (shed).  A single pipelined batch walks the whole ladder: the sleep
     holds the worker so in-flight counts cannot drain mid-batch. *)
  with_server ~domains:1 ~max_pending:3 ~throttle_pending:1 ~shed_pending:2
    (fun sock ->
      let lines =
        [
          "{\"cmd\":\"sleep\",\"seconds\":0.6,\"id\":0}";
          "{\"cmd\":\"sleep\",\"seconds\":0.1,\"id\":1}";
          "{\"cmd\":\"synth\",\"bench\":\"b02\",\"vectors\":5,\"id\":2}";
          "{\"cmd\":\"sleep\",\"seconds\":0.1,\"id\":3}";
          "{\"cmd\":\"synth\",\"bench\":\"b03\",\"vectors\":5,\"id\":4}";
          "{\"cmd\":\"synth\",\"bench\":\"b04\",\"vectors\":5,\"id\":5}";
          "{\"cmd\":\"ping\",\"id\":6}";
        ]
      in
      let c = Client.connect ~retries:100 (`Unix sock) in
      Client.send_line c (String.concat "\n" lines);
      let resp () =
        match Json.parse (Client.recv_line c) with
        | Ok j -> j
        | Error e -> Alcotest.failf "bad response: %s" e
      in
      (* id 0: first sleep admitted — occupies the worker. *)
      check_status (resp ()) "ok";
      (* id 1: past the throttle watermark, with a retry hint. *)
      let throttled = resp () in
      check_error throttled "throttled";
      Alcotest.(check bool) "retry_after_s > 0" true
        (match Option.bind (Json.member "retry_after_s" throttled) Json.to_float with
        | Some s -> s > 0.
        | None -> false);
      (* id 2: cacheable work rides through the throttle/shed tiers. *)
      check_status (resp ()) "ok";
      (* id 3: non-cacheable work past the shed watermark. *)
      check_error (resp ()) "shed";
      (* id 4: cacheable, still under max_pending. *)
      check_status (resp ()) "ok";
      (* id 5: the queue is full — even cacheable work is rejected. *)
      check_error (resp ()) "overloaded";
      (* id 6: ping is answered inline regardless of load. *)
      check_status (resp ()) "ok";
      Client.close c;
      (* The b02 result landed in the cache despite the storm around it. *)
      let r = send sock "{\"cmd\":\"synth\",\"bench\":\"b02\",\"vectors\":5}" in
      check_status r "ok";
      Alcotest.(check (option bool)) "b02 cached" (Some true)
        (Option.bind (Json.member "cached" r) Json.to_bool);
      (* Stats expose per-tier counters. *)
      let s = send sock "{\"cmd\":\"stats\"}" in
      let tier name =
        match Option.bind (get s [ "result"; "tiers"; name ]) Json.to_int with
        | Some n -> n
        | None -> Alcotest.failf "missing tier counter %s" name
      in
      Alcotest.(check bool) "ok tier counted" true (tier "ok" >= 3);
      Alcotest.(check bool) "throttled counted" true (tier "throttled" >= 1);
      Alcotest.(check bool) "shed counted" true (tier "shed" >= 1);
      Alcotest.(check bool) "overloaded counted" true (tier "overloaded" >= 1))

let test_e2e_pipelined_batch_order () =
  (* Ten requests in one write; the ten responses come back in send order
     even though the admitted work fans out across pool slices. *)
  with_server ~domains:2 ~max_pending:16 (fun sock ->
      let n = 10 in
      let lines =
        List.init n (fun i ->
            if i mod 3 = 0 then Printf.sprintf "{\"cmd\":\"ping\",\"id\":%d}" i
            else
              Printf.sprintf "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":%d,\"id\":%d}"
                (5 + (i mod 2)) i)
      in
      let c = Client.connect ~retries:100 (`Unix sock) in
      Client.send_line c (String.concat "\n" lines);
      let ids =
        List.init n (fun _ ->
            match Json.parse (Client.recv_line c) with
            | Ok j -> (
                check_status j "ok";
                match Option.bind (Json.member "id" j) Json.to_int with
                | Some id -> id
                | None -> Alcotest.fail "response without id")
            | Error e -> Alcotest.failf "bad response: %s" e)
      in
      Client.close c;
      Alcotest.(check (list int)) "responses in send order" (List.init n Fun.id) ids)

let test_e2e_multi_shard () =
  (* Three shard loops behind one acceptor: connections land round-robin,
     every one is served, and stats report per-shard request counts. *)
  with_server ~shards:3 ~domains:2 ~max_pending:16 ~backlog:4 (fun sock ->
      let conns = List.init 6 (fun _ -> Client.connect ~retries:100 (`Unix sock)) in
      List.iteri
        (fun i c ->
          let r =
            Client.request_line c
              (Printf.sprintf "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":5,\"id\":%d}" i)
          in
          match Json.parse r with
          | Ok j -> check_status j "ok"
          | Error e -> Alcotest.failf "bad response: %s" e)
        conns;
      let s = send sock "{\"cmd\":\"stats\"}" in
      List.iter Client.close conns;
      Alcotest.(check (option int)) "three shards reported" (Some 3)
        (Option.bind (get s [ "result"; "shards"; "count" ]) Json.to_int);
      let served =
        match get s [ "result"; "shards"; "requests" ] with
        | Some (Json.List l) -> List.filter_map Json.to_int l
        | _ -> []
      in
      Alcotest.(check int) "requests list has one entry per shard" 3 (List.length served);
      (* The stats snapshot predates its own response, so it sees the six
         synth replies but not necessarily itself. *)
      Alcotest.(check bool) "every request answered by some shard" true
        (List.fold_left ( + ) 0 served >= 6);
      Alcotest.(check bool) "round-robin touches every shard" true
        (List.for_all (fun n -> n >= 1) served))

(* ---------------- Client receive timeout ---------------- *)

let test_client_recv_timeout () =
  with_server ~domains:1 (fun sock ->
      let c = Client.connect ~retries:100 ~recv_timeout_s:0.3 (`Unix sock) in
      Client.send_line c "{\"cmd\":\"sleep\",\"seconds\":5}";
      let t0 = Unix.gettimeofday () in
      (match Client.recv_line c with
      | line -> Alcotest.failf "expected Timeout, got %s" line
      | exception Client.Timeout -> ());
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "raised near the deadline, not the sleep" true (elapsed < 2.);
      Client.close c;
      (* The server is unharmed; a patient connection still gets served. *)
      check_status (send sock "{\"cmd\":\"ping\"}") "ok")

(* ---------------- Health ---------------- *)

let test_e2e_health () =
  with_server ~shards:2 (fun sock ->
      check_status (send sock "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":5}") "ok";
      let h = send sock "{\"cmd\":\"health\",\"id\":\"h1\"}" in
      check_status h "ok";
      Alcotest.(check (option string)) "id echoed" (Some "h1")
        (Option.bind (Json.member "id" h) Json.to_string_opt);
      Alcotest.(check (option int)) "reports its own pid" (Some (Unix.getpid ()))
        (Option.bind (get h [ "result"; "pid" ]) Json.to_int);
      Alcotest.(check bool) "uptime is a non-negative float" true
        (match Option.bind (get h [ "result"; "uptime_s" ]) Json.to_float with
        | Some u -> u >= 0.
        | None -> false);
      Alcotest.(check bool) "inflight within the queue limit" true
        (match
           ( Option.bind (get h [ "result"; "inflight" ]) Json.to_int,
             Option.bind (get h [ "result"; "queue_limit" ]) Json.to_int )
         with
        | Some i, Some q -> i >= 0 && i <= q
        | _ -> false);
      (match get h [ "result"; "shard_depth" ] with
      | Some (Json.List l) ->
          Alcotest.(check int) "one depth per shard" 2 (List.length l);
          Alcotest.(check bool) "idle depths are zero" true
            (List.for_all (fun j -> Json.to_int j = Some 0) l)
      | _ -> Alcotest.fail "shard_depth missing");
      Alcotest.(check (option int)) "cache quarantine counter exposed" (Some 0)
        (Option.bind (get h [ "result"; "cache"; "quarantined" ]) Json.to_int);
      Alcotest.(check bool) "cache entries counted" true
        (match Option.bind (get h [ "result"; "cache"; "entries" ]) Json.to_int with
        | Some n -> n >= 1
        | None -> false))

(* ---------------- Fleet client ---------------- *)

(* A scripted endpoint: accepts one connection and answers each request
   line with the next canned response, then hangs up.  Lets the retry
   policy be exercised without a real overloaded server. *)
let with_canned_server responses f =
  incr sock_counter;
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ee_canned_%d_%d.sock" (Unix.getpid ()) !sock_counter)
  in
  if Sys.file_exists sock then Sys.remove sock;
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX sock);
  Unix.listen srv 8;
  let d =
    Domain.spawn (fun () ->
        let fd, _ = Unix.accept srv in
        let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
        (try
           List.iter
             (fun resp ->
               ignore (input_line ic);
               output_string oc (resp ^ "\n");
               flush oc)
             responses
         with End_of_file | Sys_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      Domain.join d;
      (try Unix.close srv with Unix.Unix_error _ -> ());
      try Sys.remove sock with Sys_error _ -> ())
    (fun () -> f sock)

let test_fleet_retry_exhaustion () =
  (* Every attempt is rejected: the budget runs out and the caller still
     sees the last structured rejection verbatim, plus one backoff sleep
     between attempts (never after the last). *)
  let reject = {|{"status":"error","error":"overloaded","retry_after_s":0.05}|} in
  with_canned_server [ reject; reject; reject ] (fun sock ->
      let sleeps = ref [] in
      let policy =
        {
          Fleet_client.default_policy with
          Fleet_client.max_attempts = 3;
          base_backoff_s = 0.001;
          max_backoff_s = 1.0;
          jitter = 0.25;
          recv_timeout_s = Some 5.;
        }
      in
      let fc =
        Fleet_client.create ~policy ~seed:7
          ~sleep:(fun s -> sleeps := s :: !sleeps)
          [ `Unix sock ]
      in
      (match Fleet_client.request_line fc "{\"cmd\":\"ping\"}" with
      | line -> Alcotest.failf "expected Failed, got %s" line
      | exception Fleet_client.Failed (Fleet_client.Rejected { code; attempts; line }) ->
          Alcotest.(check string) "last rejection code" "overloaded" code;
          Alcotest.(check int) "attempt budget spent" 3 attempts;
          Alcotest.(check string) "last server line verbatim" reject line
      | exception Fleet_client.Failed f ->
          Alcotest.failf "wrong failure: %s" (Fleet_client.failure_to_string f));
      (* The exponential (1-2 ms) is far below the 50 ms hint, so the
         hint floors both delays exactly. *)
      Alcotest.(check (list (float 1e-9))) "two sleeps, both floored by the hint"
        [ 0.05; 0.05 ] !sleeps;
      Fleet_client.close fc)

let test_fleet_retry_then_success () =
  let reject = {|{"status":"error","error":"throttled","retry_after_s":0.02}|} in
  let ok = {|{"status":"ok","result":{}}|} in
  with_canned_server [ reject; ok ] (fun sock ->
      let sleeps = ref [] in
      let policy =
        {
          Fleet_client.default_policy with
          Fleet_client.max_attempts = 5;
          base_backoff_s = 0.001;
          max_backoff_s = 1.0;
        }
      in
      let fc =
        Fleet_client.create ~policy ~seed:3
          ~sleep:(fun s -> sleeps := s :: !sleeps)
          [ `Unix sock ]
      in
      Alcotest.(check string) "served after one retry" ok
        (Fleet_client.request_line fc "{\"cmd\":\"ping\"}");
      Alcotest.(check (list (float 1e-9))) "one sleep, floored by the hint" [ 0.02 ]
        !sleeps;
      Fleet_client.close fc)

let test_backoff_delay () =
  let p =
    {
      Fleet_client.default_policy with
      Fleet_client.base_backoff_s = 0.1;
      max_backoff_s = 1.0;
      jitter = 0.25;
    }
  in
  (* No hint: exponential doubling, jittered downward by at most 25 %. *)
  List.iter
    (fun attempt ->
      let expd = Float.min 1.0 (0.1 *. Float.pow 2. (float_of_int (attempt - 1))) in
      let hi = Fleet_client.backoff_delay p ~attempt ~hint:None ~u:0. in
      let lo = Fleet_client.backoff_delay p ~attempt ~hint:None ~u:0.9999 in
      Alcotest.(check (float 1e-9)) "u=0 gives the full exponential" expd hi;
      Alcotest.(check bool) "jitter shaves at most 25%" true
        (lo >= (expd *. 0.75) -. 1e-9 && lo <= expd))
    [ 1; 2; 3; 4; 5; 6; 7 ];
  (* The cap bounds every delay, whatever the attempt number. *)
  Alcotest.(check (float 1e-9)) "capped" 1.0
    (Fleet_client.backoff_delay p ~attempt:9 ~hint:None ~u:0.);
  (* A server hint floors the delay... *)
  Alcotest.(check (float 1e-9)) "hint floors" 0.7
    (Fleet_client.backoff_delay p ~attempt:1 ~hint:(Some 0.7) ~u:0.5);
  (* ...but never past the cap... *)
  Alcotest.(check (float 1e-9)) "hint still capped" 1.0
    (Fleet_client.backoff_delay p ~attempt:1 ~hint:(Some 5.) ~u:0.5);
  (* ...and a hint below our own schedule is ignored. *)
  Alcotest.(check (float 1e-9)) "small hint ignored" 0.4
    (Fleet_client.backoff_delay p ~attempt:3 ~hint:(Some 0.01) ~u:0.)

let test_fleet_failover () =
  (* Two real servers; stop the one the client is talking to and the next
     request lands on the survivor. *)
  incr sock_counter;
  let base =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ee_fleet_test_%d_%d" (Unix.getpid ()) !sock_counter)
  in
  let sock0 = base ^ ".0" and sock1 = base ^ ".1" in
  let mk sock stop =
    Domain.spawn (fun () ->
        Server.serve ~stop
          {
            Server.default_config with
            Server.address = `Unix sock;
            shards = 1;
            domains = 1;
            shutdown_grace_s = 1.;
          })
  in
  let stop0 = Atomic.make false and stop1 = Atomic.make false in
  let d0 = mk sock0 stop0 and d1 = mk sock1 stop1 in
  let joined0 = ref false in
  let join0 () =
    if not !joined0 then begin
      joined0 := true;
      Atomic.set stop0 true;
      Domain.join d0
    end
  in
  Fun.protect
    ~finally:(fun () ->
      join0 ();
      Atomic.set stop1 true;
      Domain.join d1)
    (fun () ->
      (* Wait until both endpoints accept. *)
      List.iter
        (fun s -> Client.close (Client.connect ~retries:100 (`Unix s)))
        [ sock0; sock1 ];
      let fc = Fleet_client.create ~seed:11 [ `Unix sock0; `Unix sock1 ] in
      let line = "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":5}" in
      let parse resp =
        match Json.parse resp with Ok j -> j | Error e -> Alcotest.failf "bad json: %s" e
      in
      let r1 = parse (Fleet_client.request_line fc line) in
      check_status r1 "ok";
      (* Kill the endpoint the client is connected to. *)
      join0 ();
      let r2 = parse (Fleet_client.request_line fc line) in
      check_status r2 "ok";
      Alcotest.(check bool) "survivor computes the same result" true
        (get r1 [ "result"; "ee_gates" ] = get r2 [ "result"; "ee_gates" ]);
      Fleet_client.close fc)

(* ---------------- Supervisor ---------------- *)

let test_supervisor_backoff () =
  let b = Supervisor.Backoff.create ~base_s:0.5 ~cap_s:4. ~stable_s:10. () in
  let next u = Supervisor.Backoff.next b ~uptime:u in
  Alcotest.(check (float 1e-9)) "first crash" 0.5 (next 1.);
  Alcotest.(check (float 1e-9)) "doubles" 1.0 (next 1.);
  Alcotest.(check (float 1e-9)) "doubles again" 2.0 (next 1.);
  Alcotest.(check (float 1e-9)) "hits the cap" 4.0 (next 1.);
  Alcotest.(check (float 1e-9)) "stays at the cap" 4.0 (next 1.);
  Alcotest.(check int) "streak counts crashes" 5 (Supervisor.Backoff.streak b);
  (* A stable run resets the streak: occasional crashes restart promptly. *)
  Alcotest.(check (float 1e-9)) "stability resets" 0.5 (next 12.);
  Alcotest.(check int) "streak reset" 1 (Supervisor.Backoff.streak b);
  List.iter
    (fun mk ->
      match mk () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad parameters accepted")
    [
      (fun () -> Supervisor.Backoff.create ~base_s:0. ());
      (fun () -> Supervisor.Backoff.create ~base_s:1. ~cap_s:0.5 ());
      (fun () -> Supervisor.Backoff.create ~stable_s:(-1.) ());
    ]

(* A scripted process world driven by a fake clock: ops.sleep advances
   time, reap pops a queue the scenario fills, and spawn/kill record what
   the supervisor did.  The state machine runs unchanged. *)
type fake_world = {
  mutable clock : float;
  exits : (int * Unix.process_status) Queue.t;
  mutable kills : (int * int) list;  (* (pid, signal), newest first *)
  mutable events : Supervisor.event list;  (* newest first *)
}

let fake_world () =
  { clock = 0.; exits = Queue.create (); kills = []; events = [] }

let fake_ops w ~on_spawn ~on_kill ~probe =
  {
    Supervisor.spawn = on_spawn;
    kill =
      (fun ~pid ~signal ->
        w.kills <- (pid, signal) :: w.kills;
        on_kill ~pid ~signal);
    reap = (fun () -> if Queue.is_empty w.exits then None else Some (Queue.pop w.exits));
    probe;
    now = (fun () -> w.clock);
    sleep = (fun s -> w.clock <- w.clock +. s);
    log = ignore;
  }

let restart_delays w =
  List.rev
    (List.filter_map
       (function Supervisor.Restart_scheduled { delay_s; _ } -> Some delay_s | _ -> None)
       w.events)

let sup_cfg =
  {
    Supervisor.children = 1;
    tick_s = 0.1;
    probe_interval_s = 1000.;  (* probes off unless a scenario wants them *)
    probe_misses = 3;
    backoff_base_s = 0.5;
    backoff_cap_s = 30.;
    stable_s = 10.;
    grace_s = 5.;
  }

let test_supervisor_restart_backoff () =
  (* Two instant crashes (backoff 0.5 then 1.0), a long stable run whose
     crash resets the streak (0.5 again), then stop. *)
  let w = fake_world () in
  let stop = Atomic.make false in
  let next_pid = ref 99 in
  let stable_crash = ref None in
  let spawn _slot =
    incr next_pid;
    let pid = !next_pid in
    (match pid - 99 with
    | 1 | 2 -> Queue.add (pid, Unix.WEXITED 1) w.exits
    | 3 -> stable_crash := Some (pid, w.clock +. 11.)
    | _ -> Atomic.set stop true);
    pid
  in
  let on_kill ~pid ~signal =
    (* The drain's SIGTERM lands on a well-behaved child. *)
    if signal = Sys.sigterm then Queue.add (pid, Unix.WSIGNALED Sys.sigterm) w.exits
  in
  let ops = fake_ops w ~on_spawn:spawn ~on_kill ~probe:(fun _ -> true) in
  (* Wrap reap to also fire the delayed crash of the stable child. *)
  let ops =
    {
      ops with
      Supervisor.reap =
        (fun () ->
          (match !stable_crash with
          | Some (pid, at) when w.clock >= at ->
              stable_crash := None;
              Queue.add (pid, Unix.WEXITED 0) w.exits
          | _ -> ());
          if Queue.is_empty w.exits then None else Some (Queue.pop w.exits));
    }
  in
  let stats =
    Supervisor.run ~on_event:(fun e -> w.events <- e :: w.events) sup_cfg ops ~stop
  in
  Alcotest.(check (list (float 1e-9)))
    "crash loop backs off, stable run resets" [ 0.5; 1.0; 0.5 ] (restart_delays w);
  Alcotest.(check int) "four spawns" 4 stats.Supervisor.spawns;
  Alcotest.(check int) "three restarts" 3 stats.Supervisor.restarts;
  Alcotest.(check int) "no wedge kills" 0 stats.Supervisor.wedge_kills;
  Alcotest.(check bool) "drain SIGTERMed the last child" true
    (List.mem (103, Sys.sigterm) w.kills)

let test_supervisor_wedge_kill () =
  (* A child that answers no probe: after probe_misses consecutive
     failures the supervisor SIGKILLs it and restarts through backoff. *)
  let w = fake_world () in
  let stop = Atomic.make false in
  let healthy = ref false in
  let next_pid = ref 199 in
  let spawn _slot =
    incr next_pid;
    if !next_pid > 200 then begin
      (* The replacement probes healthy; end the scenario. *)
      healthy := true;
      Atomic.set stop true
    end;
    !next_pid
  in
  let on_kill ~pid ~signal =
    if signal = Sys.sigkill || signal = Sys.sigterm then
      Queue.add (pid, Unix.WSIGNALED signal) w.exits
  in
  let cfg = { sup_cfg with Supervisor.probe_interval_s = 1.0; probe_misses = 2 } in
  let ops = fake_ops w ~on_spawn:spawn ~on_kill ~probe:(fun _ -> !healthy) in
  let stats =
    Supervisor.run ~on_event:(fun e -> w.events <- e :: w.events) cfg ops ~stop
  in
  Alcotest.(check int) "one wedge kill" 1 stats.Supervisor.wedge_kills;
  Alcotest.(check int) "wedged child replaced" 2 stats.Supervisor.spawns;
  Alcotest.(check bool) "SIGKILL delivered to the wedged pid" true
    (List.mem (200, Sys.sigkill) w.kills);
  Alcotest.(check bool) "wedged event carries the miss count" true
    (List.exists
       (function Supervisor.Wedged { misses; _ } -> misses = 2 | _ -> false)
       w.events)

let test_supervisor_drain_escalates () =
  (* A child that ignores SIGTERM: the drain waits out grace_s, then
     SIGKILLs it.  Total drain time is bounded by the grace budget. *)
  let w = fake_world () in
  let stop = Atomic.make false in
  let spawn _slot =
    Atomic.set stop true;
    100
  in
  let on_kill ~pid ~signal =
    (* SIGTERM is ignored; only SIGKILL produces an exit. *)
    if signal = Sys.sigkill then Queue.add (pid, Unix.WSIGNALED Sys.sigkill) w.exits
  in
  let cfg = { sup_cfg with Supervisor.grace_s = 2.0 } in
  let ops = fake_ops w ~on_spawn:spawn ~on_kill ~probe:(fun _ -> true) in
  let stats =
    Supervisor.run ~on_event:(fun e -> w.events <- e :: w.events) cfg ops ~stop
  in
  Alcotest.(check bool) "SIGTERM first, then SIGKILL" true
    (List.rev w.kills = [ (100, Sys.sigterm); (100, Sys.sigkill) ]);
  Alcotest.(check bool) "escalated only after the grace budget" true (w.clock >= 2.0);
  Alcotest.(check bool) "drain bounded (grace + slack)" true (w.clock <= 4.0);
  Alcotest.(check int) "single spawn" 1 stats.Supervisor.spawns;
  Alcotest.(check bool) "lifecycle events in order" true
    (match List.rev w.events with
    | Supervisor.Spawned _ :: rest -> List.mem Supervisor.Draining rest
    | _ -> false)

let suite =
  ( "serve",
    [
      Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "json rejects malformed input" `Quick test_json_errors;
      Alcotest.test_case "json raw splice" `Quick test_json_raw_compact;
      Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
      Alcotest.test_case "protocol rejects bad requests" `Quick test_protocol_rejects;
      Alcotest.test_case "e2e: synth + content-addressed cache" `Quick test_e2e_synth_and_cache;
      Alcotest.test_case "e2e: inline BLIF source" `Quick test_e2e_inline_blif;
      Alcotest.test_case "e2e: search section + cache key" `Quick test_e2e_search_section;
      Alcotest.test_case "e2e: not_found / bad_request" `Quick test_e2e_not_found_and_bad_line;
      Alcotest.test_case "e2e: overload rejects, never queues unboundedly" `Quick
        test_e2e_overload;
      Alcotest.test_case "e2e: per-request deadline" `Quick test_e2e_deadline;
      Alcotest.test_case "e2e: server-default deadline" `Quick test_e2e_default_deadline;
      Alcotest.test_case "e2e: clean shutdown" `Quick test_e2e_shutdown;
      Alcotest.test_case "admission watermarks and backlog defaults" `Quick
        test_tier_thresholds;
      Alcotest.test_case "e2e: graded back-pressure ladder" `Quick test_e2e_tier_ladder;
      Alcotest.test_case "e2e: pipelined batch keeps response order" `Quick
        test_e2e_pipelined_batch_order;
      Alcotest.test_case "e2e: multi-shard round-robin" `Quick test_e2e_multi_shard;
      Alcotest.test_case "client receive timeout" `Quick test_client_recv_timeout;
      Alcotest.test_case "e2e: health snapshot" `Quick test_e2e_health;
      Alcotest.test_case "fleet client: retry budget exhaustion" `Quick
        test_fleet_retry_exhaustion;
      Alcotest.test_case "fleet client: retry honours the server hint" `Quick
        test_fleet_retry_then_success;
      Alcotest.test_case "fleet client: backoff schedule bounds" `Quick test_backoff_delay;
      Alcotest.test_case "fleet client: failover to a surviving endpoint" `Quick
        test_fleet_failover;
      Alcotest.test_case "supervisor: backoff doubling, cap, stability reset" `Quick
        test_supervisor_backoff;
      Alcotest.test_case "supervisor: crash-loop restart backoff (fake clock)" `Quick
        test_supervisor_restart_backoff;
      Alcotest.test_case "supervisor: wedged child killed and replaced" `Quick
        test_supervisor_wedge_kill;
      Alcotest.test_case "supervisor: drain escalates SIGTERM to SIGKILL" `Quick
        test_supervisor_drain_escalates;
    ] )
