(* The synthesis service: JSON codec, wire protocol, and an end-to-end
   daemon exercise over a Unix socket — caching, admission control,
   deadlines, and clean shutdown. *)

module Json = Ee_export.Json
module Protocol = Ee_serve.Protocol
module Server = Ee_serve.Server
module Client = Ee_serve.Client
module Engine = Ee_engine.Engine

(* ---------------- Json codec ---------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("t", Json.Bool true);
        ("n", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("s", Json.String "line1\nline2 \"quoted\" \\ tab\t");
        ("l", Json.List [ Json.Int 1; Json.Obj [ ("k", Json.String "v") ]; Json.Null ]);
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
      ]
  in
  let s = Json.to_string doc in
  Alcotest.(check bool) "single line" false (String.contains s '\n');
  (match Json.parse s with
  | Ok parsed -> Alcotest.(check bool) "roundtrip" true (parsed = doc)
  | Error e -> Alcotest.fail e);
  (* Numbers: integral stays Int, fractional becomes Float. *)
  (match Json.parse "{\"a\":3,\"b\":3.25,\"c\":-0.5e1}" with
  | Ok j ->
      Alcotest.(check (option int)) "int" (Some 3) (Option.bind (Json.member "a" j) Json.to_int);
      Alcotest.(check bool) "float" true (Json.member "b" j = Some (Json.Float 3.25));
      Alcotest.(check bool) "exponent" true (Json.member "c" j = Some (Json.Float (-5.)))
  | Error e -> Alcotest.fail e);
  (* Unicode escapes decode to UTF-8. *)
  (match Json.parse "\"a\\u00e9b\"" with
  | Ok (Json.String s) -> Alcotest.(check string) "utf8" "a\xc3\xa9b" s
  | _ -> Alcotest.fail "unicode escape")

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "should reject %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}"; "nan" ]

let test_json_raw_compact () =
  let multi = "{\n  \"x\": 1\n}" in
  let s = Json.to_string (Json.Obj [ ("payload", Json.raw_compact multi) ]) in
  Alcotest.(check bool) "no newline" false (String.contains s '\n');
  match Json.parse s with
  | Ok j ->
      Alcotest.(check (option int)) "raw splice still parses" (Some 1)
        (Option.bind (Option.bind (Json.member "payload" j) (Json.member "x")) Json.to_int)
  | Error e -> Alcotest.fail e

(* ---------------- Protocol ---------------- *)

let test_protocol_roundtrip () =
  let spec =
    Engine.default_spec |> Engine.with_vectors 17 |> Engine.with_threshold 50.
    |> Engine.with_selection Engine.Mcr
  in
  let env =
    {
      Protocol.id = Json.Int 9;
      deadline_s = Some 2.5;
      req = Protocol.Synth { source = `Bench "b04"; spec };
    }
  in
  let line = Json.to_string (Protocol.envelope_to_json env) in
  match Protocol.parse_line line with
  | Error e -> Alcotest.fail e
  | Ok env' ->
      Alcotest.(check bool) "id survives" true (env'.Protocol.id = Json.Int 9);
      Alcotest.(check (option (float 1e-9))) "deadline survives" (Some 2.5)
        env'.Protocol.deadline_s;
      (match env'.Protocol.req with
      | Protocol.Synth { source = `Bench "b04"; spec = s } ->
          Alcotest.(check string) "spec survives" (Engine.spec_fingerprint spec)
            (Engine.spec_fingerprint s)
      | _ -> Alcotest.fail "request shape changed")

let test_protocol_rejects () =
  List.iter
    (fun line ->
      match Protocol.parse_line line with
      | Ok _ -> Alcotest.failf "should reject %s" line
      | Error _ -> ())
    [
      "not json";
      "{}";
      "{\"cmd\":\"frobnicate\"}";
      "{\"cmd\":\"synth\"}";
      "{\"cmd\":\"synth\",\"bench\":\"b01\",\"blif\":\"x\"}";
      "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":0}";
      "{\"cmd\":\"synth\",\"bench\":\"b01\",\"deadline_s\":0}";
      "{\"cmd\":\"synth\",\"bench\":\"b01\",\"selection\":\"best\"}";
      "{\"cmd\":\"perf\"}";
    ]

(* ---------------- End to end ---------------- *)

let sock_counter = ref 0

let with_server ?(shards = 1) ?(domains = 1) ?(max_pending = 8) ?throttle_pending
    ?shed_pending ?backlog ?default_deadline_s f =
  incr sock_counter;
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ee_serve_test_%d_%d.sock" (Unix.getpid ()) !sock_counter)
  in
  let stop = Atomic.make false in
  let cfg =
    {
      Server.default_config with
      Server.address = `Unix sock;
      shards;
      domains;
      max_pending;
      throttle_pending;
      shed_pending;
      backlog;
      default_deadline_s;
      shutdown_grace_s = 1.;
    }
  in
  let srv = Domain.spawn (fun () -> Server.serve ~stop cfg) in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join srv)
    (fun () -> f sock)

let send sock line =
  let c = Client.connect ~retries:100 (`Unix sock) in
  let resp = Client.request_line c line in
  Client.close c;
  match Json.parse resp with Ok j -> j | Error e -> Alcotest.failf "bad response %S: %s" resp e

let get j path =
  List.fold_left (fun acc name -> Option.bind acc (Json.member name)) (Some j) path

let check_status j expected =
  Alcotest.(check (option string))
    ("status " ^ expected)
    (Some expected)
    (Option.bind (Json.member "status" j) Json.to_string_opt)

let check_error j code =
  check_status j "error";
  Alcotest.(check (option string)) ("error code " ^ code) (Some code)
    (Option.bind (Json.member "error" j) Json.to_string_opt)

let test_e2e_synth_and_cache () =
  with_server (fun sock ->
      let line = "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":5,\"id\":\"req-1\"}" in
      let r1 = send sock line in
      check_status r1 "ok";
      Alcotest.(check (option string)) "id echoed" (Some "req-1")
        (Option.bind (Json.member "id" r1) Json.to_string_opt);
      Alcotest.(check (option bool)) "first is cold" (Some false)
        (Option.bind (Json.member "cached" r1) Json.to_bool);
      Alcotest.(check (option string)) "row id" (Some "b01")
        (Option.bind (get r1 [ "result"; "id" ]) Json.to_string_opt);
      Alcotest.(check bool) "has ee gate count" true
        (Option.bind (get r1 [ "result"; "ee_gates" ]) Json.to_int <> None);
      (* Identical request on a fresh connection: served from the cache. *)
      let r2 = send sock line in
      check_status r2 "ok";
      Alcotest.(check (option bool)) "second is cached" (Some true)
        (Option.bind (Json.member "cached" r2) Json.to_bool);
      Alcotest.(check bool) "identical payload" true
        (Json.member "result" r1 = Json.member "result" r2);
      (* A different spec is a different key. *)
      let r3 = send sock "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":6}" in
      Alcotest.(check (option bool)) "changed spec misses" (Some false)
        (Option.bind (Json.member "cached" r3) Json.to_bool);
      (* Stats reflect the traffic. *)
      let s = send sock "{\"cmd\":\"stats\"}" in
      check_status s "ok";
      Alcotest.(check bool) "cache hits counted" true
        (match Option.bind (get s [ "result"; "cache"; "hits" ]) Json.to_int with
        | Some h -> h >= 1
        | None -> false);
      Alcotest.(check bool) "synth latencies recorded" true
        (get s [ "result"; "commands"; "synth"; "latency_ms"; "p50" ] <> None))

let test_e2e_inline_blif () =
  with_server (fun sock ->
      let blif =
        ".model ha\\n.inputs a b\\n.outputs s c\\n.names a b s\\n10 1\\n01 1\\n.names a b c\\n11 1\\n.end\\n"
      in
      let r =
        send sock (Printf.sprintf "{\"cmd\":\"synth\",\"blif\":\"%s\",\"vectors\":4}" blif)
      in
      check_status r "ok";
      Alcotest.(check (option string)) "netlist row" (Some "netlist")
        (Option.bind (get r [ "result"; "id" ]) Json.to_string_opt);
      (* Same netlist again: content-addressed, so cached. *)
      let r2 =
        send sock (Printf.sprintf "{\"cmd\":\"synth\",\"blif\":\"%s\",\"vectors\":4}" blif)
      in
      Alcotest.(check (option bool)) "inline blif cached by content" (Some true)
        (Option.bind (Json.member "cached" r2) Json.to_bool);
      (* Malformed BLIF is the client's fault, not an internal error. *)
      let bad = send sock "{\"cmd\":\"synth\",\"blif\":\"garbage\"}" in
      check_error bad "bad_request")

let test_e2e_not_found_and_bad_line () =
  with_server (fun sock ->
      check_error (send sock "{\"cmd\":\"synth\",\"bench\":\"b99\"}") "not_found";
      check_error (send sock "this is not json") "bad_request";
      (* The same connection stays usable after an error. *)
      let c = Client.connect ~retries:100 (`Unix sock) in
      let e = Client.request_line c "{\"cmd\":\"nope\"}" in
      let ok = Client.request_line c "{\"cmd\":\"ping\"}" in
      Client.close c;
      Alcotest.(check bool) "error then ping" true
        (match (Json.parse e, Json.parse ok) with
        | Ok e, Ok ok ->
            Json.member "status" e = Some (Json.String "error")
            && Json.member "status" ok = Some (Json.String "ok")
        | _ -> false))

let test_e2e_overload () =
  with_server ~domains:1 ~max_pending:1 (fun sock ->
      (* Fill the single admission slot with a slow request on one
         connection, then a second connection must be rejected, not
         queued. *)
      let slow = Client.connect ~retries:100 (`Unix sock) in
      let t = Domain.spawn (fun () -> Client.request_line slow "{\"cmd\":\"sleep\",\"seconds\":1.5}") in
      Unix.sleepf 0.4;
      let r = send sock "{\"cmd\":\"sleep\",\"seconds\":0.1}" in
      check_error r "overloaded";
      (* ping is answered inline, never subject to admission control. *)
      check_status (send sock "{\"cmd\":\"ping\"}") "ok";
      let slow_resp = Domain.join t in
      Client.close slow;
      Alcotest.(check bool) "slow request still completed" true
        (match Json.parse slow_resp with
        | Ok j -> Json.member "status" j = Some (Json.String "ok")
        | Error _ -> false);
      (* Slot free again: the next request is admitted. *)
      check_status (send sock "{\"cmd\":\"sleep\",\"seconds\":0.01}") "ok")

let test_e2e_deadline () =
  with_server ~domains:1 (fun sock ->
      let t0 = Unix.gettimeofday () in
      let r = send sock "{\"cmd\":\"sleep\",\"seconds\":10,\"deadline_s\":0.3}" in
      let elapsed = Unix.gettimeofday () -. t0 in
      check_error r "deadline_exceeded";
      Alcotest.(check bool) "answered at the deadline, not after the sleep" true
        (elapsed < 5.);
      (* The daemon survives: the worker is still busy but the loop and a
         second worker slot (none here — same worker after it drains) keep
         serving inline commands. *)
      check_status (send sock "{\"cmd\":\"ping\"}") "ok";
      check_status (send sock "{\"cmd\":\"stats\"}") "ok")

let test_e2e_default_deadline () =
  with_server ~domains:1 ~default_deadline_s:0.3 (fun sock ->
      let r = send sock "{\"cmd\":\"sleep\",\"seconds\":10}" in
      check_error r "deadline_exceeded")

let test_e2e_shutdown () =
  with_server (fun sock ->
      check_status (send sock "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":5}") "ok";
      let r = send sock "{\"cmd\":\"shutdown\"}" in
      check_status r "ok";
      (* The listener closes promptly: connects start failing. *)
      let gone =
        let rec probe n =
          if n = 0 then false
          else
            match Client.connect (`Unix sock) with
            | exception Unix.Unix_error _ -> true
            | c -> (
                (* Accepted just before the close raced us — requests on it
                   must be refused as shutting down or the socket dropped. *)
                match Client.request_line c "{\"cmd\":\"ping\"}" with
                | exception _ ->
                    Client.close c;
                    true
                | resp ->
                    Client.close c;
                    (match Json.parse resp with
                    | Ok j when Json.member "error" j = Some (Json.String "shutting_down") ->
                        true
                    | _ ->
                        Unix.sleepf 0.05;
                        probe (n - 1)))
        in
        probe 40
      in
      Alcotest.(check bool) "server stopped accepting" true gone)
  (* with_server joins the server domain, proving the loop terminated. *)

let test_tier_thresholds () =
  let cfg = { Server.default_config with Server.max_pending = 8 } in
  Alcotest.(check (pair int int)) "defaults at half and three-quarters" (4, 6)
    (Server.tier_thresholds cfg);
  Alcotest.(check (pair int int)) "explicit watermarks" (2, 5)
    (Server.tier_thresholds
       { cfg with Server.throttle_pending = Some 2; shed_pending = Some 5 });
  Alcotest.(check (pair int int)) "clamped into 1 <= t <= s <= max_pending" (1, 8)
    (Server.tier_thresholds
       { cfg with Server.throttle_pending = Some 0; shed_pending = Some 99 });
  Alcotest.(check (pair int int)) "shed never below throttle" (6, 6)
    (Server.tier_thresholds
       { cfg with Server.throttle_pending = Some 6; shed_pending = Some 2 });
  Alcotest.(check int) "backlog defaults to at least the admission bound" 64
    (Server.backlog_of cfg);
  Alcotest.(check int) "large queues widen the backlog" 200
    (Server.backlog_of { cfg with Server.max_pending = 200 });
  Alcotest.(check int) "explicit backlog wins" 4
    (Server.backlog_of { cfg with Server.backlog = Some 4 })

let test_e2e_tier_ladder () =
  (* One worker, three admission slots, watermarks at 1 (throttle) and 2
     (shed).  A single pipelined batch walks the whole ladder: the sleep
     holds the worker so in-flight counts cannot drain mid-batch. *)
  with_server ~domains:1 ~max_pending:3 ~throttle_pending:1 ~shed_pending:2
    (fun sock ->
      let lines =
        [
          "{\"cmd\":\"sleep\",\"seconds\":0.6,\"id\":0}";
          "{\"cmd\":\"sleep\",\"seconds\":0.1,\"id\":1}";
          "{\"cmd\":\"synth\",\"bench\":\"b02\",\"vectors\":5,\"id\":2}";
          "{\"cmd\":\"sleep\",\"seconds\":0.1,\"id\":3}";
          "{\"cmd\":\"synth\",\"bench\":\"b03\",\"vectors\":5,\"id\":4}";
          "{\"cmd\":\"synth\",\"bench\":\"b04\",\"vectors\":5,\"id\":5}";
          "{\"cmd\":\"ping\",\"id\":6}";
        ]
      in
      let c = Client.connect ~retries:100 (`Unix sock) in
      Client.send_line c (String.concat "\n" lines);
      let resp () =
        match Json.parse (Client.recv_line c) with
        | Ok j -> j
        | Error e -> Alcotest.failf "bad response: %s" e
      in
      (* id 0: first sleep admitted — occupies the worker. *)
      check_status (resp ()) "ok";
      (* id 1: past the throttle watermark, with a retry hint. *)
      let throttled = resp () in
      check_error throttled "throttled";
      Alcotest.(check bool) "retry_after_s > 0" true
        (match Option.bind (Json.member "retry_after_s" throttled) Json.to_float with
        | Some s -> s > 0.
        | None -> false);
      (* id 2: cacheable work rides through the throttle/shed tiers. *)
      check_status (resp ()) "ok";
      (* id 3: non-cacheable work past the shed watermark. *)
      check_error (resp ()) "shed";
      (* id 4: cacheable, still under max_pending. *)
      check_status (resp ()) "ok";
      (* id 5: the queue is full — even cacheable work is rejected. *)
      check_error (resp ()) "overloaded";
      (* id 6: ping is answered inline regardless of load. *)
      check_status (resp ()) "ok";
      Client.close c;
      (* The b02 result landed in the cache despite the storm around it. *)
      let r = send sock "{\"cmd\":\"synth\",\"bench\":\"b02\",\"vectors\":5}" in
      check_status r "ok";
      Alcotest.(check (option bool)) "b02 cached" (Some true)
        (Option.bind (Json.member "cached" r) Json.to_bool);
      (* Stats expose per-tier counters. *)
      let s = send sock "{\"cmd\":\"stats\"}" in
      let tier name =
        match Option.bind (get s [ "result"; "tiers"; name ]) Json.to_int with
        | Some n -> n
        | None -> Alcotest.failf "missing tier counter %s" name
      in
      Alcotest.(check bool) "ok tier counted" true (tier "ok" >= 3);
      Alcotest.(check bool) "throttled counted" true (tier "throttled" >= 1);
      Alcotest.(check bool) "shed counted" true (tier "shed" >= 1);
      Alcotest.(check bool) "overloaded counted" true (tier "overloaded" >= 1))

let test_e2e_pipelined_batch_order () =
  (* Ten requests in one write; the ten responses come back in send order
     even though the admitted work fans out across pool slices. *)
  with_server ~domains:2 ~max_pending:16 (fun sock ->
      let n = 10 in
      let lines =
        List.init n (fun i ->
            if i mod 3 = 0 then Printf.sprintf "{\"cmd\":\"ping\",\"id\":%d}" i
            else
              Printf.sprintf "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":%d,\"id\":%d}"
                (5 + (i mod 2)) i)
      in
      let c = Client.connect ~retries:100 (`Unix sock) in
      Client.send_line c (String.concat "\n" lines);
      let ids =
        List.init n (fun _ ->
            match Json.parse (Client.recv_line c) with
            | Ok j -> (
                check_status j "ok";
                match Option.bind (Json.member "id" j) Json.to_int with
                | Some id -> id
                | None -> Alcotest.fail "response without id")
            | Error e -> Alcotest.failf "bad response: %s" e)
      in
      Client.close c;
      Alcotest.(check (list int)) "responses in send order" (List.init n Fun.id) ids)

let test_e2e_multi_shard () =
  (* Three shard loops behind one acceptor: connections land round-robin,
     every one is served, and stats report per-shard request counts. *)
  with_server ~shards:3 ~domains:2 ~max_pending:16 ~backlog:4 (fun sock ->
      let conns = List.init 6 (fun _ -> Client.connect ~retries:100 (`Unix sock)) in
      List.iteri
        (fun i c ->
          let r =
            Client.request_line c
              (Printf.sprintf "{\"cmd\":\"synth\",\"bench\":\"b01\",\"vectors\":5,\"id\":%d}" i)
          in
          match Json.parse r with
          | Ok j -> check_status j "ok"
          | Error e -> Alcotest.failf "bad response: %s" e)
        conns;
      let s = send sock "{\"cmd\":\"stats\"}" in
      List.iter Client.close conns;
      Alcotest.(check (option int)) "three shards reported" (Some 3)
        (Option.bind (get s [ "result"; "shards"; "count" ]) Json.to_int);
      let served =
        match get s [ "result"; "shards"; "requests" ] with
        | Some (Json.List l) -> List.filter_map Json.to_int l
        | _ -> []
      in
      Alcotest.(check int) "requests list has one entry per shard" 3 (List.length served);
      (* The stats snapshot predates its own response, so it sees the six
         synth replies but not necessarily itself. *)
      Alcotest.(check bool) "every request answered by some shard" true
        (List.fold_left ( + ) 0 served >= 6);
      Alcotest.(check bool) "round-robin touches every shard" true
        (List.for_all (fun n -> n >= 1) served))

let suite =
  ( "serve",
    [
      Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "json rejects malformed input" `Quick test_json_errors;
      Alcotest.test_case "json raw splice" `Quick test_json_raw_compact;
      Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
      Alcotest.test_case "protocol rejects bad requests" `Quick test_protocol_rejects;
      Alcotest.test_case "e2e: synth + content-addressed cache" `Quick test_e2e_synth_and_cache;
      Alcotest.test_case "e2e: inline BLIF source" `Quick test_e2e_inline_blif;
      Alcotest.test_case "e2e: not_found / bad_request" `Quick test_e2e_not_found_and_bad_line;
      Alcotest.test_case "e2e: overload rejects, never queues unboundedly" `Quick
        test_e2e_overload;
      Alcotest.test_case "e2e: per-request deadline" `Quick test_e2e_deadline;
      Alcotest.test_case "e2e: server-default deadline" `Quick test_e2e_default_deadline;
      Alcotest.test_case "e2e: clean shutdown" `Quick test_e2e_shutdown;
      Alcotest.test_case "admission watermarks and backlog defaults" `Quick
        test_tier_thresholds;
      Alcotest.test_case "e2e: graded back-pressure ladder" `Quick test_e2e_tier_ladder;
      Alcotest.test_case "e2e: pipelined batch keeps response order" `Quick
        test_e2e_pipelined_batch_order;
      Alcotest.test_case "e2e: multi-shard round-robin" `Quick test_e2e_multi_shard;
    ] )
