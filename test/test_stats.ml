module Stats = Ee_util.Stats

let feq = Alcotest.float 1e-9

let test_mean () =
  Alcotest.check feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  Alcotest.check feq "singleton" 7. (Stats.mean [| 7. |])

let test_summarize () =
  let s = Stats.summarize [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Alcotest.(check int) "n" 8 s.Stats.n;
  Alcotest.check feq "mean" 5. s.Stats.mean;
  Alcotest.check feq "stddev" 2. s.Stats.stddev;
  Alcotest.check feq "min" 2. s.Stats.min;
  Alcotest.check feq "max" 9. s.Stats.max;
  Alcotest.check feq "median (even)" 4.5 s.Stats.median

let test_median_odd () =
  let s = Stats.summarize [| 9.; 1.; 5. |] in
  Alcotest.check feq "median (odd)" 5. s.Stats.median

let test_geomean () =
  Alcotest.check feq "powers of two" 4. (Stats.geomean [| 2.; 8. |]);
  Alcotest.check feq "all equal" 3. (Stats.geomean [| 3.; 3.; 3. |]);
  Alcotest.check feq "singleton" 0.5 (Stats.geomean [| 0.5 |]);
  (* geomean <= arithmetic mean, strictly when samples differ *)
  let a = [| 1.; 4.; 9.; 16. |] in
  Alcotest.(check bool) "AM-GM" true (Stats.geomean a < Stats.mean a);
  (match Stats.geomean [| 1.; 0.; 2. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero sample must be rejected");
  match Stats.geomean [| -1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative sample must be rejected"

let test_percentile () =
  let a = [| 15.; 20.; 35.; 40.; 50. |] in
  Alcotest.check feq "p0 = min" 15. (Stats.percentile a 0.);
  Alcotest.check feq "p100 = max" 50. (Stats.percentile a 100.);
  Alcotest.check feq "median" 35. (Stats.percentile a 50.);
  (* Linear interpolation between ranks 1 and 2: 20 + 0.6*(35-20). *)
  Alcotest.check feq "p40 interpolates" 29. (Stats.percentile a 40.);
  (* Order-independent. *)
  Alcotest.check feq "unsorted input" 35. (Stats.percentile [| 50.; 15.; 35.; 40.; 20. |] 50.);
  Alcotest.check feq "singleton any rank" 7. (Stats.percentile [| 7. |] 90.);
  (match Stats.percentile [||] 50. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty sample must be rejected");
  match Stats.percentile a 101. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rank above 100 must be rejected"

let test_percent_change () =
  Alcotest.check feq "decrease" 25. (Stats.percent_change ~before:100. ~after:75.);
  Alcotest.check feq "increase" (-10.) (Stats.percent_change ~before:100. ~after:110.);
  Alcotest.check feq "zero baseline" 0. (Stats.percent_change ~before:0. ~after:5.)

let test_ratio_percent () =
  Alcotest.check feq "ratio" 33.
    (Stats.ratio_percent ~part:33. ~whole:100.);
  Alcotest.check feq "zero whole" 0. (Stats.ratio_percent ~part:5. ~whole:0.)

let suite =
  ( "stats",
    [
      Alcotest.test_case "mean" `Quick test_mean;
      Alcotest.test_case "summarize" `Quick test_summarize;
      Alcotest.test_case "median odd" `Quick test_median_odd;
      Alcotest.test_case "geomean" `Quick test_geomean;
      Alcotest.test_case "percentile" `Quick test_percentile;
      Alcotest.test_case "percent_change" `Quick test_percent_change;
      Alcotest.test_case "ratio_percent" `Quick test_ratio_percent;
    ] )
