module Bits = Ee_util.Bits

let naive_popcount x =
  let c = ref 0 in
  for i = 0 to 61 do
    if (x lsr i) land 1 = 1 then incr c
  done;
  !c

let test_popcount () =
  List.iter
    (fun x -> Alcotest.(check int) (string_of_int x) (naive_popcount x) (Bits.popcount x))
    [ 0; 1; 2; 3; 0xFF; 0xF0F0; 0xFFFF; 123456789; max_int ]

let test_popcount64 () =
  Alcotest.(check int) "zero" 0 (Bits.popcount64 0L);
  Alcotest.(check int) "all ones" 64 (Bits.popcount64 Int64.minus_one);
  Alcotest.(check int) "one bit" 1 (Bits.popcount64 Int64.min_int)

let test_get_set () =
  let w = Bits.set 0 5 true in
  Alcotest.(check bool) "set then get" true (Bits.get w 5);
  Alcotest.(check bool) "other bits clear" false (Bits.get w 4);
  Alcotest.(check int) "clear restores" 0 (Bits.set w 5 false)

let test_mask () =
  Alcotest.(check int) "mask 0" 0 (Bits.mask 0);
  Alcotest.(check int) "mask 4" 15 (Bits.mask 4);
  Alcotest.(check int) "mask 10" 1023 (Bits.mask 10)

let test_iter_fold_indices () =
  let w = 0b101101 in
  Alcotest.(check (list int)) "indices" [ 0; 2; 3; 5 ] (Bits.indices w);
  Alcotest.(check int) "fold sum" 10 (Bits.fold_bits w (fun acc i -> acc + i) 0);
  let collected = ref [] in
  Bits.iter_bits w (fun i -> collected := i :: !collected);
  Alcotest.(check (list int)) "iter ascending" [ 0; 2; 3; 5 ] (List.rev !collected)

let binomial n k =
  let rec fact i = if i <= 1 then 1 else i * fact (i - 1) in
  fact n / (fact k * fact (n - k))

let test_subsets_of_size () =
  for n = 1 to 5 do
    for k = 0 to n do
      let subs = Bits.subsets_of_size n k in
      Alcotest.(check int)
        (Printf.sprintf "count C(%d,%d)" n k)
        (binomial n k) (List.length subs);
      List.iter
        (fun m -> Alcotest.(check int) "popcount" k (Bits.popcount m))
        subs
    done
  done

let test_all_nonempty_proper_subsets () =
  (* The paper's "all 14 possible support sets of 3 or fewer variables"
     for a 4-input LUT. *)
  let subs = Bits.all_nonempty_proper_subsets 0xF in
  Alcotest.(check int) "14 subsets of a LUT4" 14 (List.length subs);
  List.iter
    (fun m ->
      Alcotest.(check bool) "nonempty" true (m <> 0);
      Alcotest.(check bool) "proper" true (m <> 0xF);
      Alcotest.(check bool) "within" true (m land lnot 0xF = 0))
    subs;
  (* Sparse mask: subsets of {0, 2}. *)
  Alcotest.(check (list int)) "sparse mask" [ 1; 4 ] (Bits.all_nonempty_proper_subsets 0b101);
  Alcotest.(check (list int)) "empty mask" [] (Bits.all_nonempty_proper_subsets 0)

let test_subset_edge_cases () =
  (* Degenerate shapes the sketch generator leans on: an empty universe,
     cube budgets past the universe size, and the full mask. *)
  Alcotest.(check (list int)) "n=0 k=0" [ 0 ] (Bits.subsets_of_size 0 0);
  Alcotest.(check (list int)) "n=0 k=1" [] (Bits.subsets_of_size 0 1);
  Alcotest.(check (list int)) "k>n" [] (Bits.subsets_of_size 2 3);
  Alcotest.(check (list int)) "k=n full mask" [ 0b1111 ] (Bits.subsets_of_size 4 4);
  Alcotest.(check int) "LUT6 proper subsets" 62
    (List.length (Bits.all_nonempty_proper_subsets (Bits.mask 6)));
  Alcotest.(check (list int)) "singleton mask" []
    (Bits.all_nonempty_proper_subsets 0b1000)

let test_log2_ceil () =
  List.iter
    (fun (n, expect) -> Alcotest.(check int) (string_of_int n) expect (Bits.log2_ceil n))
    [ (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (8, 3); (9, 4); (1024, 10) ]

let suite =
  ( "bits",
    [
      Alcotest.test_case "popcount" `Quick test_popcount;
      Alcotest.test_case "popcount64" `Quick test_popcount64;
      Alcotest.test_case "get/set" `Quick test_get_set;
      Alcotest.test_case "mask" `Quick test_mask;
      Alcotest.test_case "iter/fold/indices" `Quick test_iter_fold_indices;
      Alcotest.test_case "subsets_of_size" `Quick test_subsets_of_size;
      Alcotest.test_case "all_nonempty_proper_subsets" `Quick test_all_nonempty_proper_subsets;
      Alcotest.test_case "subset edge cases" `Quick test_subset_edge_cases;
      Alcotest.test_case "log2_ceil" `Quick test_log2_ceil;
    ] )
