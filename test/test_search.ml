(* The sketch/CEGIS trigger search: equivalence with brute force,
   pruning, budgets, the Pareto front and shared-trigger selection. *)

module Bits = Ee_util.Bits
module Tt = Ee_logic.Truthtab
module Lut4 = Ee_logic.Lut4
module Cube = Ee_logic.Cube
module Bdd = Ee_logic.Bdd
module Trigger = Ee_core.Trigger
module Trigger_wide = Ee_core.Trigger_wide
module Mcr_select = Ee_core.Mcr_select
module Sketch = Ee_search.Sketch
module Cegis = Ee_search.Cegis
module Driver = Ee_search.Driver
module Pareto = Ee_search.Pareto
module Search_select = Ee_search.Search_select
module Pl = Ee_phased.Pl
module Netlist = Ee_netlist.Netlist

let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let tt_gen arity =
  QCheck.make ~print:Tt.to_string
    (QCheck.Gen.map
       (fun seed -> Tt.random (Ee_util.Prng.create seed) arity)
       (QCheck.Gen.int_bound 1_000_000))

(* ------------------------------------------------------------------ *)
(* Sketch                                                              *)
(* ------------------------------------------------------------------ *)

let test_sketch_enumerate () =
  let sketches = Sketch.enumerate ~max_cubes:2 ~universe:0b111 () in
  (* 6 strict non-empty submasks x 2 budgets. *)
  Alcotest.(check int) "count" 12 (List.length sketches);
  let costs = List.map Sketch.cost sketches in
  Alcotest.(check bool) "cost-sorted" true (List.sort compare costs = costs);
  (* Support size dominates the order: every 1-input sketch precedes every
     2-input sketch. *)
  let sizes = List.map (fun s -> Bits.popcount (Sketch.support s)) sketches in
  Alcotest.(check bool) "size-major" true (List.sort compare sizes = sizes);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        "admits own support" true
        (Sketch.admits s [ Cube.make ~care:(Sketch.support s) ~value:0 ]))
    sketches

let test_sketch_validation () =
  Alcotest.check_raises "empty support"
    (Invalid_argument "Sketch.make: empty support") (fun () ->
      ignore (Sketch.make ~support:0 ~max_cubes:1));
  Alcotest.check_raises "zero cubes"
    (Invalid_argument "Sketch.make: max_cubes must be >= 1") (fun () ->
      ignore (Sketch.make ~support:1 ~max_cubes:0))

(* ------------------------------------------------------------------ *)
(* CEGIS                                                               *)
(* ------------------------------------------------------------------ *)

(* The reference semantics: the minterm-scanning maximal trigger. *)
let ref_trigger tt ~subset = Trigger_wide.trigger_function tt ~subset

let test_cegis_exact () =
  (* The paper's running AND example: a controlling value on one input
     alone decides the output. *)
  let tt = Lut4.to_truthtab (Lut4.logand (Lut4.var 0) (Lut4.var 1)) in
  let ctx = Cegis.ctx tt in
  let r = Cegis.synthesize ctx ~subset:0b01 in
  Alcotest.(check bool) "exact" true r.Cegis.exact;
  Alcotest.(check bool)
    "matches reference" true
    (Tt.equal r.Cegis.func (ref_trigger tt ~subset:0b01));
  (* a=0 decides the AND: 8 of 16 minterms. *)
  Alcotest.(check int) "coverage" 8 r.Cegis.coverage_count;
  Alcotest.(check int) "one cube" 1 (List.length r.Cegis.cubes)

let prop_cegis_matches_reference =
  qtest "cegis func = minterm-scan trigger (arity 5)" ~count:60 (tt_gen 5)
    (fun tt ->
      let ctx = Cegis.ctx tt in
      List.for_all
        (fun subset ->
          let r = Cegis.synthesize ctx ~subset in
          r.Cegis.exact && Tt.equal r.Cegis.func (ref_trigger tt ~subset))
        (Bits.all_nonempty_proper_subsets (Bits.mask 5)))

let prop_cegis_budget_sound =
  qtest "budgeted cegis is a sound monotone under-approximation" ~count:60
    (tt_gen 5) (fun tt ->
      let ctx = Cegis.ctx tt in
      List.for_all
        (fun subset ->
          let exact = Cegis.synthesize ctx ~subset in
          let results =
            List.map
              (fun b ->
                let r = Cegis.synthesize ~max_cubes:b ctx ~subset in
                (* Within budget, and every ON-minterm of the budgeted
                   trigger is an ON-minterm of the exact one. *)
                ( List.length r.Cegis.cubes <= b
                  && Tt.equal
                       (Tt.logand r.Cegis.func exact.Cegis.func)
                       r.Cegis.func,
                  r.Cegis.coverage_count ))
              [ 1; 2; 3 ]
          in
          List.for_all fst results
          &&
          (* Greedy coverage is monotone in the budget. *)
          let cs = List.map snd results in
          List.sort compare cs = cs)
        (Bits.all_nonempty_proper_subsets (Tt.support tt)))

let test_cegis_parity () =
  (* Parity is undecidable from any strict subset: every spec is empty and
     the loop must converge on the constant-false trigger. *)
  let tt = Tt.of_fun 4 (fun m -> Bits.popcount m mod 2 = 1) in
  let ctx = Cegis.ctx tt in
  List.iter
    (fun subset ->
      let r = Cegis.synthesize ctx ~subset in
      Alcotest.(check int) "no coverage" 0 r.Cegis.coverage_count;
      Alcotest.(check bool)
        "trigger matches reference" true
        (Tt.equal r.Cegis.func (ref_trigger tt ~subset)))
    (Bits.all_nonempty_proper_subsets 0b1111)

(* ------------------------------------------------------------------ *)
(* Driver vs brute force                                               *)
(* ------------------------------------------------------------------ *)

let prop_driver_equals_brute arity =
  qtest
    (Printf.sprintf "driver = brute force (arity %d)" arity)
    (tt_gen arity)
    (fun tt -> Driver.agrees_with_brute tt)

let prop_driver_pruned_equals_brute =
  qtest "pruned driver = pruned brute force (arity 5)" ~count:60 (tt_gen 5)
    (fun tt ->
      Driver.agrees_with_brute ~min_coverage:25. tt
      && Driver.agrees_with_brute ~top_k:4 tt
      && Driver.agrees_with_brute ~min_coverage:12.5 ~top_k:3 tt)

let test_driver_exhaustive_lut4 () =
  (* Every one of the 65 536 LUT4 functions — the paper's own enumeration
     universe.  The search must reproduce Trigger.candidates exactly. *)
  let bad = ref 0 and first = ref (-1) in
  for f = 0 to 65535 do
    let lut = Lut4.of_int f in
    let narrow = Trigger.candidates lut in
    let searched = Driver.candidates (Lut4.to_truthtab lut) in
    let ok =
      List.length searched = List.length narrow
      && List.for_all2
           (fun (s : Driver.candidate) (n : Trigger.candidate) ->
             s.Driver.subset = n.Trigger.subset
             && s.Driver.coverage_count = n.Trigger.coverage_count
             && s.Driver.exact
             && Tt.equal s.Driver.func (Lut4.to_truthtab n.Trigger.func))
           searched narrow
    in
    if not ok then begin
      incr bad;
      if !first < 0 then first := f
    end
  done;
  Alcotest.(check int)
    (Printf.sprintf "mismatching functions (first: %d)" !first)
    0 !bad

let test_driver_pruning_work () =
  (* A 6-input single-minterm function under a 99% floor: the six arity-5
     supports get probed (96.9% spec coverage), and their recorded bounds
     prune every smaller support without another BDD probe. *)
  let tt = Tt.of_fun 6 (fun m -> m = 0b101010) in
  let cands, stats = Driver.search ~min_coverage:99. tt in
  Alcotest.(check (list int)) "nothing passes the floor" []
    (List.map (fun (c : Driver.candidate) -> c.Driver.subset) cands);
  Alcotest.(check int) "only the top layer probed" 6 stats.Driver.probed;
  Alcotest.(check bool) "pruned the rest" true (stats.Driver.bound_pruned > 0);
  Alcotest.(check int) "accounting adds up" stats.Driver.supports
    (stats.Driver.probed + stats.Driver.bound_pruned)

(* ------------------------------------------------------------------ *)
(* Trigger_wide pruning                                                *)
(* ------------------------------------------------------------------ *)

let test_wide_prune () =
  let tt = Lut4.to_truthtab (Lut4.of_int 0b1000_0000_0000_0000) in
  let all = Trigger_wide.candidates tt in
  let top2 = Trigger_wide.candidates ~top_k:2 tt in
  Alcotest.(check bool) "top2 size" true (List.length top2 <= 2);
  Alcotest.(check bool)
    "top2 from all" true
    (List.for_all (fun c -> List.mem c all) top2);
  let via_prune = Trigger_wide.prune ~top_k:2 all in
  Alcotest.(check bool) "prune consistent" true (top2 = via_prune);
  let strong = Trigger_wide.candidates ~min_coverage:80. tt in
  Alcotest.(check bool)
    "floor respected" true
    (List.for_all
       (fun (c : Trigger_wide.candidate) -> c.Trigger_wide.coverage >= 80.)
       strong)

let prop_wide_prune_is_filter =
  qtest "candidates ?knobs = prune (candidates)" ~count:60 (tt_gen 5)
    (fun tt ->
      let all = Trigger_wide.candidates tt in
      Trigger_wide.candidates ~min_coverage:30. tt
      = Trigger_wide.prune ~min_coverage:30. all
      && Trigger_wide.candidates ~top_k:3 tt = Trigger_wide.prune ~top_k:3 all)

(* ------------------------------------------------------------------ *)
(* Pareto                                                              *)
(* ------------------------------------------------------------------ *)

let prop_pareto_front =
  qtest "pareto front is non-dominated and anchored" ~count:150 (tt_gen 4)
    (fun tt ->
      let front = Pareto.front tt in
      List.for_all
        (fun p ->
          not (List.exists (fun q -> q <> p && Pareto.dominates q p) front))
        front
      &&
      (* Coverage strictly increases with cube count along the front. *)
      let sorted =
        List.sort (fun a b -> compare a.Pareto.pt_cubes b.Pareto.pt_cubes) front
      in
      let rec increasing = function
        | a :: (b :: _ as r) ->
            a.Pareto.pt_coverage_count < b.Pareto.pt_coverage_count
            && increasing r
        | _ -> true
      in
      increasing sorted
      &&
      (* The best exact candidate appears on the front. *)
      match Trigger_wide.candidates tt with
      | [] -> front = []
      | cands ->
          let best =
            List.fold_left
              (fun acc (c : Trigger_wide.candidate) ->
                max acc c.Trigger_wide.coverage_count)
              0 cands
          in
          List.exists (fun p -> p.Pareto.pt_coverage_count = best) front)

(* ------------------------------------------------------------------ *)
(* Bdd additions                                                       *)
(* ------------------------------------------------------------------ *)

let prop_bdd_any_sat =
  qtest "any_sat finds a model iff one exists" (tt_gen 5) (fun tt ->
      let m = Bdd.manager () in
      let b = Bdd.of_truthtab m tt in
      match Bdd.any_sat m b with
      | Some w -> Tt.eval tt w
      | None -> Tt.count_ones tt = 0)

let prop_bdd_quantifiers =
  qtest "forall_mask/exists_mask agree with Truthtab" (tt_gen 5) (fun tt ->
      let m = Bdd.manager () in
      let b = Bdd.of_truthtab m tt in
      List.for_all
        (fun mask ->
          let fa = Bits.fold_bits mask (fun acc v -> Tt.forall acc ~var:v) tt in
          let ex = Bits.fold_bits mask (fun acc v -> Tt.exists acc ~var:v) tt in
          Tt.equal (Bdd.to_truthtab m (Bdd.forall_mask m b ~mask) ~arity:5) fa
          && Tt.equal (Bdd.to_truthtab m (Bdd.exists_mask m b ~mask) ~arity:5) ex)
        [ 0b00001; 0b10100; 0b11111; 0 ])

(* ------------------------------------------------------------------ *)
(* Shared-trigger selection                                            *)
(* ------------------------------------------------------------------ *)

let and2 = Lut4.logand (Lut4.var 0) (Lut4.var 1)

(* Two identical AND gates fed by the same two registers with {e permuted}
   fanin, plus an XOR combining them: the canonical sharing opportunity. *)
let shared_pl () =
  let b = Netlist.builder () in
  let a = Netlist.add_dff b ~init:false in
  let c = Netlist.add_dff b ~init:true in
  let g1 = Netlist.add_lut b and2 [| a; c |] in
  let g2 = Netlist.add_lut b and2 [| c; a |] in
  let x = Netlist.add_lut b (Lut4.logxor (Lut4.var 0) (Lut4.var 1)) [| g1; g2 |] in
  Netlist.connect_dff b a ~d:x;
  Netlist.connect_dff b c ~d:g1;
  Netlist.set_output b "y" g2;
  Pl.of_netlist (Netlist.finalize b)

let test_select_never_regresses () =
  let pl = shared_pl () in
  let _, r = Search_select.run pl in
  Alcotest.(check bool)
    "lambda <= mcr floor" true
    (r.Search_select.lambda <= r.Search_select.lambda_mcr);
  Alcotest.(check bool) "no fallback" true (not r.Search_select.fell_back)

let test_select_sharing_consistency () =
  let pl = shared_pl () in
  let opts =
    {
      Search_select.default_options with
      Search_select.base =
        { Mcr_select.default_options with Mcr_select.min_gain_percent = 0. };
    }
  in
  let pl', r = Search_select.run ~options:opts pl in
  match r.Search_select.shared_groups with
  | [] ->
      (* Nothing accepted is legal (everything is λ-gated), but then the
         period must sit exactly on the MCR floor. *)
      Alcotest.(check (float 0.)) "mcr lambda kept" r.Search_select.lambda_mcr
        r.Search_select.lambda
  | g :: _ ->
      Alcotest.(check bool)
        "group has 2+ masters" true
        (List.length g.Search_select.sg_masters >= 2);
      (* The member triggers merged structurally: strictly fewer trigger
         gates than EE-annotated masters. *)
      let with_ee = ref 0 in
      Array.iteri
        (fun i _ -> if Pl.ee pl' i <> None then incr with_ee)
        (Pl.gates pl');
      Alcotest.(check bool)
        "triggers merged" true
        (Pl.ee_gate_count pl' < !with_ee)

let test_pl_canonical_merge () =
  (* with_ee_shared must merge permuted-fanin identical triggers: g1 reads
     (a, c), g2 reads (c, a); the symmetric conjunction trigger over both
     signals canonicalizes to the same trigger gate for both masters. *)
  let pl = shared_pl () in
  let masters =
    Array.to_list (Array.mapi (fun i g -> (i, g)) (Pl.gates pl))
    |> List.filter_map (fun (i, (g : Pl.gate)) ->
           match g.Pl.kind with
           | Pl.Gate f when Lut4.equal f and2 -> Some i
           | _ -> None)
  in
  match masters with
  | [ m1; m2 ] ->
      let mk m =
        ( m,
          {
            Pl.req_support = 0b0011;
            req_func = and2;
            req_coverage = 100. *. float_of_int (Lut4.count_ones and2) /. 16.;
            req_cost = 0.;
          } )
      in
      let pl_sym = Pl.with_ee_shared pl [ mk m1; mk m2 ] in
      Alcotest.(check int) "one shared trigger across permuted fanin" 1
        (Pl.ee_gate_count pl_sym);
      Alcotest.(check bool) "both masters annotated" true
        (Pl.ee pl_sym m1 <> None && Pl.ee pl_sym m2 <> None)
  | _ -> Alcotest.fail "expected exactly two AND masters"

let suite =
  ( "search",
    [
      Alcotest.test_case "sketch enumerate" `Quick test_sketch_enumerate;
      Alcotest.test_case "sketch validation" `Quick test_sketch_validation;
      Alcotest.test_case "cegis exact AND" `Quick test_cegis_exact;
      prop_cegis_matches_reference;
      prop_cegis_budget_sound;
      Alcotest.test_case "cegis parity" `Quick test_cegis_parity;
      prop_driver_equals_brute 2;
      prop_driver_equals_brute 3;
      prop_driver_equals_brute 4;
      prop_driver_equals_brute 5;
      prop_driver_pruned_equals_brute;
      Alcotest.test_case "driver exhaustive LUT4" `Slow
        test_driver_exhaustive_lut4;
      Alcotest.test_case "driver pruning accounting" `Quick
        test_driver_pruning_work;
      Alcotest.test_case "trigger_wide prune" `Quick test_wide_prune;
      prop_wide_prune_is_filter;
      prop_pareto_front;
      prop_bdd_any_sat;
      prop_bdd_quantifiers;
      Alcotest.test_case "select never regresses" `Quick
        test_select_never_regresses;
      Alcotest.test_case "select sharing consistency" `Quick
        test_select_sharing_consistency;
      Alcotest.test_case "pl canonical merge" `Quick test_pl_canonical_merge;
    ] )
