module Feedback = Ee_phased.Feedback
module Pl = Ee_phased.Pl
module Mg = Ee_markedgraph.Marked_graph
module Netlist = Ee_netlist.Netlist
module Lut4 = Ee_logic.Lut4

let analyze_bench id =
  let b = Ee_bench_circuits.Itc99.find id in
  let nl = Ee_rtl.Techmap.run_rtl (b.Ee_bench_circuits.Itc99.build ()) in
  Feedback.analyze (Pl.of_netlist nl)

let test_result_live_safe () =
  List.iter
    (fun id ->
      let a = analyze_bench id in
      Alcotest.(check bool) (id ^ " live") true (Mg.is_live a.Feedback.graph);
      Alcotest.(check bool) (id ^ " safe") true (Mg.is_safe a.Feedback.graph))
    [ "b01"; "b02"; "b06"; "b09" ]

let test_register_loop_needs_no_feedback () =
  (* A register in a combinational loop is itself the token loop: both
     feedbacks of the two data arcs are redundant. *)
  let b = Netlist.builder () in
  let d = Netlist.add_dff b ~init:false in
  let inv = Netlist.add_lut b (Lut4.lognot (Lut4.var 0)) [| d |] in
  Netlist.connect_dff b d ~d:inv;
  Netlist.set_output b "q" d;
  let pl = Pl.of_netlist (Netlist.finalize b) in
  let a = Feedback.analyze pl in
  Alcotest.(check bool) "some removed" true (List.length a.Feedback.removed >= 2);
  Alcotest.(check bool) "still live" true (Mg.is_live a.Feedback.graph)

let test_pure_pipeline_keeps_feedbacks () =
  (* A feedforward chain source -> lut -> sink has no loops except the
     feedback pairs themselves: nothing is redundant. *)
  let b = Netlist.builder () in
  let x = Netlist.add_input b "x" in
  let g1 = Netlist.add_lut b (Lut4.lognot (Lut4.var 0)) [| x |] in
  let g2 = Netlist.add_lut b (Lut4.lognot (Lut4.var 0)) [| g1 |] in
  Netlist.set_output b "y" g2;
  let pl = Pl.of_netlist (Netlist.finalize b) in
  let a = Feedback.analyze pl in
  Alcotest.(check int) "nothing removable" 0 (List.length a.Feedback.removed);
  Alcotest.(check int) "three pairs" 3 a.Feedback.total_feedbacks

let test_savings_percent () =
  let a = analyze_bench "b02" in
  let expected =
    100.
    *. float_of_int (List.length a.Feedback.removed)
    /. float_of_int a.Feedback.total_feedbacks
  in
  Alcotest.(check (float 1e-9)) "percent formula" expected (Feedback.savings_percent a)

let test_deterministic () =
  let a1 = analyze_bench "b06" and a2 = analyze_bench "b06" in
  Alcotest.(check bool) "same removals" true (a1.Feedback.removed = a2.Feedback.removed)

let test_token_game_on_reduced_graph () =
  (* The reduced graph must still run forever without deadlock or token
     pile-up. *)
  let a = analyze_bench "b06" in
  let rng = Ee_util.Prng.create 13 in
  match Mg.run_token_game a.Feedback.graph ~steps:3000 ~rng with
  | `Ok _ -> ()
  | `Unsafe (arc, _) -> Alcotest.failf "unsafe at arc %d" arc
  | `Dead _ -> Alcotest.fail "deadlock after feedback removal"

let suite =
  ( "feedback",
    [
      Alcotest.test_case "result live+safe" `Quick test_result_live_safe;
      Alcotest.test_case "register loop needs no feedback" `Quick test_register_loop_needs_no_feedback;
      Alcotest.test_case "pure pipeline keeps feedbacks" `Quick test_pure_pipeline_keeps_feedbacks;
      Alcotest.test_case "savings percent" `Quick test_savings_percent;
      Alcotest.test_case "deterministic" `Quick test_deterministic;
      Alcotest.test_case "token game on reduced graph" `Quick test_token_game_on_reduced_graph;
    ] )
